#include "sim/perf_report.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "sim/parse_util.hh"
#include "sim/stats.hh"

namespace gpummu {

void
BenchReport::toJson(std::ostream &os) const
{
    os << "{\"schema_version\":" << schemaVersion
       << ",\"generator\":\"simbench\""
       << ",\"pr\":" << pr << ",\"scale\":" << jsonNum(scale)
       << ",\"seed\":" << seed << ",\"repeat\":" << repeat
       << ",\"points\":[";
    bool first = true;
    for (const BenchMeasurement &m : points) {
        os << (first ? "" : ",") << "{\"point\":\""
           << jsonEscape(m.point) << "\",\"benchmark\":\""
           << jsonEscape(m.benchmark) << "\",\"config\":\""
           << jsonEscape(m.config) << "\",\"cycles\":" << m.cycles
           << ",\"events_fired\":" << m.eventsFired
           << ",\"instructions\":" << m.instructions
           << ",\"wall_seconds\":" << jsonNum(m.wallSeconds)
           << ",\"cycles_per_sec\":" << jsonNum(m.cyclesPerSec())
           << ",\"events_per_sec\":" << jsonNum(m.eventsPerSec())
           << "}";
        first = false;
    }
    os << "]}\n";
}

std::string
BenchReport::toJson() const
{
    std::ostringstream os;
    toJson(os);
    return os.str();
}

bool
BenchReport::writeFile(const std::string &path, std::string *err) const
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (err != nullptr)
            *err = "cannot open '" + path + "' for writing";
        return false;
    }
    toJson(os);
    os.flush();
    if (!os) {
        if (err != nullptr)
            *err = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

/** Tiny recursive-descent JSON parser (validation only, not perf-
 *  critical). Strings handle the escapes jsonEscape() emits. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : s_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (err_ != nullptr && err_->empty()) {
            *err_ = "json parse error at byte " +
                    std::to_string(pos_) + ": " + why;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        const char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.str);
        }
        if (literal("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return number(out);
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key");
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return fail("unterminated escape");
                const char e = s_[pos_++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        return fail("truncated \\u escape");
                    // Validation-only: keep the raw escape; exact
                    // code-point decoding is irrelevant here.
                    out += "\\u";
                    out += s_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  }
                  default:
                    return fail("bad escape character");
                }
                continue;
            }
            out += c;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected a value");
        // Locale-independent strict parse: emit uses jsonNum
        // (to_chars), so parse must not consult LC_NUMERIC — under a
        // comma-decimal locale std::stod would misparse "1.5" as 1
        // and break the byte-stability round trip.
        if (!parseDouble(
                std::string_view(s_).substr(start, pos_ - start),
                out.number)) {
            return fail("bad number");
        }
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    const std::string &s_;
    std::string *err_;
    std::size_t pos_ = 0;
};

/** Fetch a required member of @p kind; records an error otherwise. */
const JsonValue *
requireKey(const JsonValue &obj, const std::string &key,
           JsonValue::Kind kind, const std::string &where,
           std::vector<std::string> &errors)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr) {
        errors.push_back(where + ": missing required key '" + key +
                         "'");
        return nullptr;
    }
    if (v->kind != kind) {
        errors.push_back(where + ": key '" + key +
                         "' has the wrong type");
        return nullptr;
    }
    return v;
}

void
requirePositiveFinite(const JsonValue &obj, const std::string &key,
                      const std::string &where,
                      std::vector<std::string> &errors)
{
    const JsonValue *v =
        requireKey(obj, key, JsonValue::Kind::Number, where, errors);
    if (v == nullptr)
        return;
    if (!std::isfinite(v->number))
        errors.push_back(where + ": '" + key + "' is not finite");
    else if (v->number <= 0.0)
        errors.push_back(where + ": '" + key +
                         "' must be strictly positive");
}

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *err)
{
    if (err != nullptr)
        err->clear();
    JsonParser p(text, err);
    return p.parse(out);
}

BenchValidation
validateBenchJson(const std::string &json)
{
    BenchValidation v;
    JsonValue doc;
    std::string perr;
    if (!parseJson(json, doc, &perr)) {
        v.errors.push_back(perr);
        return v;
    }
    if (doc.kind != JsonValue::Kind::Object) {
        v.errors.push_back("top level: not a JSON object");
        return v;
    }

    if (const JsonValue *sv =
            requireKey(doc, "schema_version", JsonValue::Kind::Number,
                       "top level", v.errors)) {
        const double ver = sv->number;
        if (ver != std::floor(ver) || ver < 1 ||
            ver > kBenchSchemaVersion) {
            v.errors.push_back(
                "top level: schema_version must be an integer in [1, " +
                std::to_string(kBenchSchemaVersion) + "]");
        }
    }
    requireKey(doc, "generator", JsonValue::Kind::String, "top level",
               v.errors);
    requireKey(doc, "pr", JsonValue::Kind::Number, "top level",
               v.errors);
    requireKey(doc, "scale", JsonValue::Kind::Number, "top level",
               v.errors);
    requireKey(doc, "seed", JsonValue::Kind::Number, "top level",
               v.errors);
    requireKey(doc, "repeat", JsonValue::Kind::Number, "top level",
               v.errors);

    const JsonValue *pts = requireKey(
        doc, "points", JsonValue::Kind::Array, "top level", v.errors);
    if (pts == nullptr)
        return v;
    if (pts->items.empty()) {
        v.errors.push_back("points: array is empty");
        return v;
    }
    for (std::size_t i = 0; i < pts->items.size(); ++i) {
        const JsonValue &p = pts->items[i];
        const std::string where = "points[" + std::to_string(i) + "]";
        if (p.kind != JsonValue::Kind::Object) {
            v.errors.push_back(where + ": not an object");
            continue;
        }
        requireKey(p, "point", JsonValue::Kind::String, where,
                   v.errors);
        requireKey(p, "benchmark", JsonValue::Kind::String, where,
                   v.errors);
        requireKey(p, "config", JsonValue::Kind::String, where,
                   v.errors);
        requirePositiveFinite(p, "cycles", where, v.errors);
        requirePositiveFinite(p, "events_fired", where, v.errors);
        requireKey(p, "instructions", JsonValue::Kind::Number, where,
                   v.errors);
        requirePositiveFinite(p, "wall_seconds", where, v.errors);
        requirePositiveFinite(p, "cycles_per_sec", where, v.errors);
        requirePositiveFinite(p, "events_per_sec", where, v.errors);
    }
    return v;
}

} // namespace gpummu
