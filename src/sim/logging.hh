/**
 * @file
 * Error and status reporting helpers in the gem5 spirit.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can catch it.
 * fatal()  - the user asked for something unsupportable (bad
 *            configuration); exits with an error code.
 * warn()   - questionable but survivable condition.
 * inform() - plain status output.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gpummu {

namespace detail {

/** Stringify a parameter pack via an ostringstream. */
template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on a simulator bug. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line,
                      detail::formatParts(std::forward<Args>(args)...));
}

/** Exit on a user/configuration error. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line,
                      detail::formatParts(std::forward<Args>(args)...));
}

/** Print a warning and continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatParts(std::forward<Args>(args)...));
}

/** Print a status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatParts(std::forward<Args>(args)...));
}

} // namespace gpummu

#define GPUMMU_PANIC(...) ::gpummu::panic(__FILE__, __LINE__, __VA_ARGS__)
#define GPUMMU_FATAL(...) ::gpummu::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Cheap always-on invariant check; panics with the condition text. */
#define GPUMMU_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gpummu::panic(__FILE__, __LINE__, "assertion failed: " #cond  \
                            " ", ##__VA_ARGS__);                            \
        }                                                                   \
    } while (0)

#endif // SIM_LOGGING_HH
