#include "telemetry/span.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace gpummu {

const char *
spanStageName(SpanStage stage)
{
    switch (stage) {
      case SpanStage::L1Lookup:
        return "l1_lookup";
      case SpanStage::L1Hit:
        return "l1_hit";
      case SpanStage::L1Miss:
        return "l1_miss";
      case SpanStage::MmuMerge:
        return "mmu_merge";
      case SpanStage::L2Lookup:
        return "l2_lookup";
      case SpanStage::L2Hit:
        return "l2_hit";
      case SpanStage::L2Merge:
        return "l2_merge";
      case SpanStage::L2Bypass:
        return "l2_bypass";
      case SpanStage::L2NeedWalk:
        return "l2_need_walk";
      case SpanStage::WalkEnqueue:
        return "walk_enqueue";
      case SpanStage::WalkGrant:
        return "walk_grant";
      case SpanStage::WalkDone:
        return "walk_done";
      case SpanStage::IommuDepart:
        return "iommu_depart";
      case SpanStage::IommuLookup:
        return "iommu_lookup";
      case SpanStage::IommuHit:
        return "iommu_hit";
      case SpanStage::IommuMerge:
        return "iommu_merge";
      case SpanStage::IommuFault:
        return "iommu_fault";
      case SpanStage::Fill:
        return "fill";
    }
    GPUMMU_PANIC("unknown span stage");
}

bool
spanStageQueueing(SpanStage stage)
{
    // An arrival interval *ending* at one of these stages was spent
    // waiting in a queue: enqueue->grant at the walkers, miss->port
    // issue at the shared L2 TLB, depart->probe (interconnect + port)
    // at the IOMMU. Everything else is service time.
    return stage == SpanStage::WalkGrant ||
           stage == SpanStage::L2Lookup ||
           stage == SpanStage::IommuLookup;
}

namespace {

const char *
spanWalkRefName(SpanWalkRef where)
{
    switch (where) {
      case SpanWalkRef::Pwc:
        return "pwc";
      case SpanWalkRef::L2:
        return "l2";
      case SpanWalkRef::Dram:
        return "dram";
    }
    GPUMMU_PANIC("unknown walk-ref class");
}

} // namespace

SpanTracker::SpanTracker(std::size_t top_k)
    : topKLimit_(top_k == 0 ? 1 : top_k)
{
}

Cycle
SpanTracker::nowFromClock() const
{
    return clock_ != nullptr ? clock_->now() : 0;
}

SpanTracker::OpenSpan *
SpanTracker::newest(std::uint64_t key)
{
    auto it = open_.find(key);
    if (it == open_.end() || it->second.empty())
        return nullptr;
    auto sp = spans_.find(it->second.back());
    GPUMMU_ASSERT(sp != spans_.end());
    return &sp->second;
}

void
SpanTracker::record(OpenSpan &sp, SpanStage stage, Cycle at)
{
    // Timelines stay monotonic even when a hook reports an earlier
    // issue cycle than the previous transition (a pre-reserved port):
    // clamping keeps the telescoped intervals exact.
    if (!sp.timeline.empty() && at < sp.timeline.back().cycle)
        at = sp.timeline.back().cycle;
    sp.timeline.push_back(StageEvent{stage, at});
    ++stageCounts_[static_cast<std::size_t>(stage)];
}

void
SpanTracker::openAt(std::uint64_t key, SpanStage stage, Cycle at,
                    int tid)
{
    const std::uint64_t id = nextId_++;
    ++opened_;
    OpenSpan &sp = spans_[id];
    sp.key = key;
    sp.tid = tid;
    sp.open = at;
    record(sp, stage, at);
    open_[key].push_back(id);
    if (sink_ != nullptr)
        sink_->flow('s', TraceCat::Core, "xlat", tid, at, id);
}

void
SpanTracker::openNow(std::uint64_t key, SpanStage stage, int tid)
{
    openAt(key, stage, nowFromClock(), tid);
}

void
SpanTracker::openOrStageAt(std::uint64_t key, SpanStage stage,
                           Cycle at, int tid)
{
    if (newest(key) != nullptr)
        stageAt(key, stage, at);
    else
        openAt(key, stage, at, tid);
}

void
SpanTracker::stageAt(std::uint64_t key, SpanStage stage, Cycle at)
{
    OpenSpan *sp = newest(key);
    if (sp == nullptr)
        return;
    record(*sp, stage, at);
    if (sink_ != nullptr) {
        auto it = open_.find(key);
        sink_->flow('t', TraceCat::Core, "xlat", sp->tid,
                    sp->timeline.back().cycle, it->second.back());
    }
}

void
SpanTracker::stageNow(std::uint64_t key, SpanStage stage)
{
    stageAt(key, stage, nowFromClock());
}

void
SpanTracker::closeSpan(std::uint64_t id, SpanStage stage, Cycle at)
{
    auto it = spans_.find(id);
    GPUMMU_ASSERT(it != spans_.end());
    OpenSpan &sp = it->second;
    record(sp, stage, at);

    ClosedSpan done;
    done.id = id;
    done.key = sp.key;
    done.tid = sp.tid;
    done.open = sp.open;
    done.close = sp.timeline.back().cycle;
    // Telescoped arrival intervals: each transition is attributed
    // the time since the previous one, so per-stage sums equal the
    // end-to-end latency exactly (the opening event's interval is
    // zero by construction and is not sampled).
    Cycle prev = sp.open;
    for (std::size_t i = 1; i < sp.timeline.size(); ++i) {
        const StageEvent &ev = sp.timeline[i];
        const Cycle d = ev.cycle - prev;
        stageHists_[static_cast<std::size_t>(ev.stage)].sample(d);
        if (spanStageQueueing(ev.stage))
            done.queueing += d;
        else
            done.service += d;
        prev = ev.cycle;
    }
    endToEnd_.sample(done.latency());
    queueing_.sample(done.queueing);
    service_.sample(done.service);
    perAsid_[keyAsid(done.key)].sample(done.latency());
    ++closed_;

    if (sink_ != nullptr)
        sink_->flow('f', TraceCat::Core, "xlat", done.tid, done.close,
                    id);

    done.timeline = std::move(sp.timeline);
    spans_.erase(it);
    considerTopK(std::move(done));
}

void
SpanTracker::closeNewestAt(std::uint64_t key, SpanStage stage,
                           Cycle at)
{
    auto it = open_.find(key);
    if (it == open_.end() || it->second.empty())
        return;
    const std::uint64_t id = it->second.back();
    it->second.pop_back();
    if (it->second.empty())
        open_.erase(it);
    closeSpan(id, stage, at);
}

void
SpanTracker::closeNewestNow(std::uint64_t key, SpanStage stage)
{
    closeNewestAt(key, stage, nowFromClock());
}

void
SpanTracker::closeAllAt(std::uint64_t key, SpanStage stage, Cycle at)
{
    auto it = open_.find(key);
    if (it == open_.end())
        return;
    // Oldest first so span ids retire in open order at equal cycles.
    std::vector<std::uint64_t> ids = std::move(it->second);
    open_.erase(it);
    for (std::uint64_t id : ids)
        closeSpan(id, stage, at);
}

void
SpanTracker::walkRef(unsigned level, SpanWalkRef where)
{
    if (level >= walkRefs_.size())
        level = static_cast<unsigned>(walkRefs_.size()) - 1;
    ++walkRefs_[level][static_cast<std::size_t>(where)];
}

std::uint64_t
SpanTracker::walkRefs(SpanWalkRef where) const
{
    std::uint64_t n = 0;
    for (const auto &lvl : walkRefs_)
        n += lvl[static_cast<std::size_t>(where)];
    return n;
}

std::uint64_t
SpanTracker::walkRefsTotal() const
{
    std::uint64_t n = 0;
    for (std::size_t w = 0; w < kNumSpanWalkRefs; ++w)
        n += walkRefs(static_cast<SpanWalkRef>(w));
    return n;
}

void
SpanTracker::considerTopK(ClosedSpan &&done)
{
    // Sorted worst-first; ties break on earlier open, then lower id,
    // so the retained set is identical across runs.
    auto slower = [](const ClosedSpan &a, const ClosedSpan &b) {
        if (a.latency() != b.latency())
            return a.latency() > b.latency();
        if (a.open != b.open)
            return a.open < b.open;
        return a.id < b.id;
    };
    if (topK_.size() >= topKLimit_ && slower(topK_.back(), done))
        return;
    auto pos =
        std::lower_bound(topK_.begin(), topK_.end(), done, slower);
    topK_.insert(pos, std::move(done));
    if (topK_.size() > topKLimit_)
        topK_.pop_back();
}

namespace {

/** One aggregate row of the stage/summary tables. */
struct StatRow
{
    std::string name;
    std::string cls;
    const Histogram *h;
};

std::vector<StatRow>
stageRows(const SpanTracker &t)
{
    std::vector<StatRow> rows;
    for (std::size_t s = 0; s < kNumSpanStages; ++s) {
        const auto stage = static_cast<SpanStage>(s);
        const Histogram &h = t.stageHist(stage);
        if (h.count() == 0)
            continue;
        rows.push_back(StatRow{spanStageName(stage),
                               spanStageQueueing(stage) ? "queueing"
                                                        : "service",
                               &h});
    }
    rows.push_back(StatRow{"queueing", "total", &t.queueing()});
    rows.push_back(StatRow{"service", "total", &t.service()});
    rows.push_back(StatRow{"end_to_end", "total", &t.endToEnd()});
    return rows;
}

void
writeTimeline(std::ostream &os,
              const SpanTracker::ClosedSpan &sp, char sep)
{
    for (std::size_t i = 0; i < sp.timeline.size(); ++i) {
        if (i != 0)
            os << sep;
        os << spanStageName(sp.timeline[i].stage) << "@+"
           << (sp.timeline[i].cycle - sp.open);
    }
}

} // namespace

void
SpanTracker::writeSummary(std::ostream &os) const
{
    os << "translation spans: " << opened_ << " opened, " << closed_
       << " closed, " << spansOpen() << " open at end; walk refs "
       << walkRefsTotal() << " (pwc " << walkRefs(SpanWalkRef::Pwc)
       << " / l2 " << walkRefs(SpanWalkRef::L2) << " / dram "
       << walkRefs(SpanWalkRef::Dram) << ")\n";
    if (closed_ == 0)
        return;

    os << std::left << std::setw(14) << "stage" << std::setw(10)
       << "class" << std::right << std::setw(12) << "count"
       << std::setw(14) << "cycles" << std::setw(10) << "mean"
       << std::setw(8) << "p50" << std::setw(8) << "p95"
       << std::setw(8) << "p99" << std::setw(8) << "max" << "\n";
    for (const StatRow &r : stageRows(*this)) {
        const Histogram &h = *r.h;
        os << std::left << std::setw(14) << r.name << std::setw(10)
           << r.cls << std::right << std::setw(12) << h.count()
           << std::setw(14) << h.sum() << std::setw(10) << std::fixed
           << std::setprecision(1) << h.mean() << std::setw(8)
           << std::setprecision(0) << h.percentile(0.50)
           << std::setw(8) << h.percentile(0.95) << std::setw(8)
           << h.percentile(0.99) << std::setw(8)
           << static_cast<double>(h.max()) << "\n";
        os.unsetf(std::ios::fixed);
    }

    const double total = static_cast<double>(queueing_.sum()) +
                         static_cast<double>(service_.sum());
    if (total > 0.0) {
        os << "queueing vs service: "
           << std::fixed << std::setprecision(1)
           << 100.0 * static_cast<double>(queueing_.sum()) / total
           << "% queueing / "
           << 100.0 * static_cast<double>(service_.sum()) / total
           << "% service of " << static_cast<std::uint64_t>(total)
           << " decomposed cycles\n";
        os.unsetf(std::ios::fixed);
    }

    if (perAsid_.size() > 1) {
        os << "per-asid end-to-end:\n";
        for (const auto &[asid, h] : perAsid_) {
            os << "  asid " << asid << ": " << h.count()
               << " spans, mean " << std::fixed
               << std::setprecision(1) << h.mean() << ", p95 "
               << std::setprecision(0) << h.percentile(0.95)
               << ", max " << static_cast<double>(h.max()) << "\n";
            os.unsetf(std::ios::fixed);
        }
    }

    const std::size_t show = std::min<std::size_t>(5, topK_.size());
    os << "slowest " << show << " spans:\n";
    for (std::size_t i = 0; i < show; ++i) {
        const ClosedSpan &sp = topK_[i];
        os << "  #" << i + 1 << " asid " << keyAsid(sp.key)
           << " vpn 0x" << std::hex << keyLocal(sp.key) << std::dec
           << " tid " << sp.tid << " open " << sp.open << " lat "
           << sp.latency() << " (q " << sp.queueing << " / s "
           << sp.service << "): ";
        writeTimeline(os, sp, ' ');
        os << "\n";
    }
}

void
SpanTracker::writeCsv(std::ostream &os) const
{
    os << "# stages\n"
          "stage,class,count,cycles,mean,p50,p95,p99,min,max\n";
    for (const StatRow &r : stageRows(*this)) {
        const Histogram &h = *r.h;
        os << r.name << ',' << r.cls << ',' << h.count() << ','
           << h.sum() << ',' << jsonNum(h.mean()) << ','
           << jsonNum(h.percentile(0.50)) << ','
           << jsonNum(h.percentile(0.95)) << ','
           << jsonNum(h.percentile(0.99)) << ',' << h.min() << ','
           << h.max() << "\n";
    }
    os << "# walk_refs\nlevel,pwc,l2,dram\n";
    for (std::size_t lvl = 0; lvl < walkRefs_.size(); ++lvl) {
        os << lvl << ',' << walkRefs_[lvl][0] << ','
           << walkRefs_[lvl][1] << ',' << walkRefs_[lvl][2] << "\n";
    }
    os << "# per_asid\nasid,count,cycles,mean,p50,p95,p99,max\n";
    for (const auto &[asid, h] : perAsid_) {
        os << asid << ',' << h.count() << ',' << h.sum() << ','
           << jsonNum(h.mean()) << ',' << jsonNum(h.percentile(0.50))
           << ',' << jsonNum(h.percentile(0.95)) << ','
           << jsonNum(h.percentile(0.99)) << ',' << h.max() << "\n";
    }
    os << "# top_spans\n"
          "rank,id,asid,vpn,tid,open,close,latency,queueing,service,"
          "timeline\n";
    for (std::size_t i = 0; i < topK_.size(); ++i) {
        const ClosedSpan &sp = topK_[i];
        os << i + 1 << ',' << sp.id << ',' << keyAsid(sp.key)
           << ",0x" << std::hex << keyLocal(sp.key) << std::dec << ','
           << sp.tid << ',' << sp.open << ',' << sp.close << ','
           << sp.latency() << ',' << sp.queueing << ',' << sp.service
           << ',';
        writeTimeline(os, sp, '|');
        os << "\n";
    }
}

bool
SpanTracker::writeCsvFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    writeCsv(f);
    return f.good();
}

namespace {

void
jsonHist(std::ostream &os, const Histogram &h)
{
    os << "{\"count\":" << h.count() << ",\"cycles\":" << h.sum()
       << ",\"mean\":" << jsonNum(h.mean())
       << ",\"p50\":" << jsonNum(h.percentile(0.50))
       << ",\"p95\":" << jsonNum(h.percentile(0.95))
       << ",\"p99\":" << jsonNum(h.percentile(0.99))
       << ",\"min\":" << h.min() << ",\"max\":" << h.max() << "}";
}

} // namespace

void
SpanTracker::writeJson(std::ostream &os) const
{
    os << "{\"meta\":{\"spans_opened\":" << opened_
       << ",\"spans_closed\":" << closed_
       << ",\"spans_open_at_end\":" << spansOpen()
       << ",\"walk_refs\":{\"total\":" << walkRefsTotal();
    for (std::size_t w = 0; w < kNumSpanWalkRefs; ++w) {
        const auto where = static_cast<SpanWalkRef>(w);
        os << ",\"" << spanWalkRefName(where)
           << "\":" << walkRefs(where);
    }
    os << "}},\"stages\":[";
    bool first = true;
    for (const StatRow &r : stageRows(*this)) {
        os << (first ? "" : ",") << "{\"stage\":\"" << r.name
           << "\",\"class\":\"" << r.cls << "\",\"stats\":";
        jsonHist(os, *r.h);
        os << "}";
        first = false;
    }
    os << "],\"per_asid\":[";
    first = true;
    for (const auto &[asid, h] : perAsid_) {
        os << (first ? "" : ",") << "{\"asid\":" << asid
           << ",\"stats\":";
        jsonHist(os, h);
        os << "}";
        first = false;
    }
    os << "],\"top_spans\":[";
    for (std::size_t i = 0; i < topK_.size(); ++i) {
        const ClosedSpan &sp = topK_[i];
        os << (i == 0 ? "" : ",") << "{\"id\":" << sp.id
           << ",\"asid\":" << keyAsid(sp.key)
           << ",\"vpn\":" << keyLocal(sp.key) << ",\"tid\":" << sp.tid
           << ",\"open\":" << sp.open << ",\"close\":" << sp.close
           << ",\"latency\":" << sp.latency()
           << ",\"queueing\":" << sp.queueing
           << ",\"service\":" << sp.service << ",\"timeline\":[";
        for (std::size_t j = 0; j < sp.timeline.size(); ++j) {
            os << (j == 0 ? "" : ",") << "{\"stage\":\""
               << spanStageName(sp.timeline[j].stage)
               << "\",\"cycle\":" << sp.timeline[j].cycle << "}";
        }
        os << "]}";
    }
    os << "]}";
}

bool
SpanTracker::writeJsonFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    writeJson(f);
    return f.good();
}

} // namespace gpummu
