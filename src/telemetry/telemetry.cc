#include "telemetry/telemetry.hh"

#include <algorithm>
#include <bit>
#include <fstream>

#include "sim/logging.hh"

namespace gpummu {

namespace {

/** Stable partial sort used by both top-K tables: hotter first,
 *  address ascending on ties. */
template <typename Map, typename Hotness>
std::vector<std::pair<typename Map::key_type,
                      typename Map::mapped_type>>
topK(const Map &m, std::size_t k, Hotness hot)
{
    std::vector<
        std::pair<typename Map::key_type, typename Map::mapped_type>>
        rows(m.begin(), m.end());
    const std::size_t n = std::min(k, rows.size());
    std::partial_sort(rows.begin(), rows.begin() + n, rows.end(),
                      [&](const auto &a, const auto &b) {
                          const auto ha = hot(a.second);
                          const auto hb = hot(b.second);
                          if (ha != hb)
                              return ha > hb;
                          return a.first < b.first;
                      });
    rows.resize(n);
    return rows;
}

} // namespace

unsigned
HeatProfiler::PageStat::sharers() const
{
    return static_cast<unsigned>(std::popcount(sharerMask));
}

unsigned
HeatProfiler::LineStat::sharers() const
{
    return static_cast<unsigned>(std::popcount(sharerMask));
}

std::uint64_t
HeatProfiler::sharerBit(int tid)
{
    // Bit per walker pool id; negative (GPU-wide walkers, IOMMU) and
    // out-of-range ids share the top bit so the mask stays one word.
    const int bit = (tid < 0 || tid >= 63) ? 63 : tid;
    return std::uint64_t{1} << bit;
}

void
HeatProfiler::onWalkComplete(Vpn vpn, int tid, Cycle enq, Cycle done)
{
    PageStat &p = pages_[vpn];
    const std::uint64_t lat = done >= enq ? done - enq : 0;
    p.walks += 1;
    p.walkCycles += lat;
    p.maxLatency = std::max(p.maxLatency, lat);
    p.sharerMask |= sharerBit(tid);
    totalWalks_ += 1;
}

void
HeatProfiler::onWalkRef(PhysAddr line, unsigned level, int tid,
                        RefWhere where)
{
    LineStat &l = lines_[line];
    l.refs += 1;
    switch (where) {
      case RefWhere::Pwc:
        l.pwcHits += 1;
        break;
      case RefWhere::L2:
        l.l2Refs += 1;
        break;
      case RefWhere::Dram:
        l.dramRefs += 1;
        break;
    }
    l.sharerMask |= sharerBit(tid);
    l.level = std::max(l.level, level);
    totalRefs_ += 1;
}

void
HeatProfiler::onPageDivergence(std::uint64_t pages)
{
    cur_.count += 1;
    cur_.sum += pages;
    cur_.max = std::max(cur_.max, pages);
    totalDivN_ += 1;
}

void
HeatProfiler::rollInterval()
{
    divSeries_.push_back(cur_);
    cur_ = DivergenceInterval{};
}

std::vector<std::pair<Vpn, HeatProfiler::PageStat>>
HeatProfiler::topPages(std::size_t k) const
{
    return topK(pages_, k,
                [](const PageStat &p) { return p.walks; });
}

std::vector<std::pair<PhysAddr, HeatProfiler::LineStat>>
HeatProfiler::topLines(std::size_t k) const
{
    return topK(lines_, k, [](const LineStat &l) { return l.refs; });
}

void
StatSampler::bind(const StatRegistry &reg)
{
    GPUMMU_ASSERT(counters_.empty(),
                  "StatSampler bound twice; one sampler per run");
    reg.forEachCounter(
        [this](const std::string &name, const Counter &c) {
            names_.push_back(name);
            counters_.push_back(&c);
        });
}

void
StatSampler::sample(Cycle start, Cycle end)
{
    Interval iv;
    iv.start = start;
    iv.end = end;
    iv.cum.reserve(counters_.size());
    for (const Counter *c : counters_)
        iv.cum.push_back(c->value());
    intervals_.push_back(std::move(iv));
}

Telemetry::Telemetry(const TelemetryConfig &cfg) : cfg_(cfg)
{
    GPUMMU_ASSERT(cfg_.sampleInterval > 0,
                  "telemetry sample interval must be positive");
    nextBoundary_ = cfg_.sampleInterval;
}

void
Telemetry::begin(const StatRegistry &reg)
{
    sampler_.bind(reg);
}

void
Telemetry::boundary(Cycle at)
{
    sampler_.sample(lastBoundary_, at);
    heat_.rollInterval();
    lastBoundary_ = at;
    nextBoundary_ = at + cfg_.sampleInterval;
}

void
Telemetry::finish(Cycle cycles, const StatRegistry &reg)
{
    if (finished_)
        return;
    finished_ = true;
    runCycles_ = cycles;
    // Close the partial tail interval (end-of-run work - drains,
    // final kernel cycles - lands here rather than vanishing).
    if (cycles > lastBoundary_ || sampler_.intervals().empty())
        boundary(cycles);
    // Stall attribution totals exist only after the cores fold their
    // ledgers at end of run, so they are a finish-time snapshot, not
    // an interval series. Aggregate "<core>.stalls.<reason>" across
    // cores by reason.
    reg.forEachHistogram(
        [this](const std::string &name, const Histogram &h) {
            const auto pos = name.find(".stalls.");
            if (pos == std::string::npos)
                return;
            StallTotal &t =
                stalls_[name.substr(pos + sizeof(".stalls.") - 1)];
            t.warps += h.count();
            t.cycles += h.sum();
        });
}

void
Telemetry::setMeta(const std::string &bench,
                   const std::string &config)
{
    bench_ = bench;
    config_ = config;
}

void
Telemetry::writeCsv(std::ostream &os) const
{
    os << "cycle_start,cycle_end,page_div_n,page_div_sum,page_div_max";
    for (const std::string &name : sampler_.names())
        os << ',' << name;
    os << '\n';
    const auto &ivs = sampler_.intervals();
    const auto &div = heat_.divergenceSeries();
    std::vector<std::uint64_t> prev(sampler_.names().size(), 0);
    for (std::size_t i = 0; i < ivs.size(); ++i) {
        const StatSampler::Interval &iv = ivs[i];
        os << iv.start << ',' << iv.end;
        if (i < div.size()) {
            os << ',' << div[i].count << ',' << div[i].sum << ','
               << div[i].max;
        } else {
            os << ",0,0,0";
        }
        for (std::size_t c = 0; c < iv.cum.size(); ++c) {
            os << ',' << (iv.cum[c] - prev[c]);
            prev[c] = iv.cum[c];
        }
        os << '\n';
    }
}

bool
Telemetry::writeCsvFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    writeCsv(f);
    return f.good();
}

void
Telemetry::writeJson(std::ostream &os) const
{
    os << "{\"meta\":{\"bench\":\"" << jsonEscape(bench_)
       << "\",\"config\":\"" << jsonEscape(config_)
       << "\",\"sample_interval\":" << cfg_.sampleInterval
       << ",\"run_cycles\":" << runCycles_ << "},";

    os << "\"columns\":[";
    bool first = true;
    for (const std::string &name : sampler_.names()) {
        os << (first ? "" : ",") << '"' << jsonEscape(name) << '"';
        first = false;
    }
    os << "],\"intervals\":[";
    const auto &ivs = sampler_.intervals();
    const auto &div = heat_.divergenceSeries();
    std::vector<std::uint64_t> prev(sampler_.names().size(), 0);
    for (std::size_t i = 0; i < ivs.size(); ++i) {
        const StatSampler::Interval &iv = ivs[i];
        os << (i ? "," : "") << "{\"start\":" << iv.start
           << ",\"end\":" << iv.end;
        if (i < div.size()) {
            os << ",\"page_div\":{\"n\":" << div[i].count
               << ",\"sum\":" << div[i].sum
               << ",\"max\":" << div[i].max << "}";
        } else {
            os << ",\"page_div\":{\"n\":0,\"sum\":0,\"max\":0}";
        }
        os << ",\"delta\":[";
        for (std::size_t c = 0; c < iv.cum.size(); ++c) {
            os << (c ? "," : "") << (iv.cum[c] - prev[c]);
        }
        os << "],\"cum\":[";
        for (std::size_t c = 0; c < iv.cum.size(); ++c) {
            os << (c ? "," : "") << iv.cum[c];
            prev[c] = iv.cum[c];
        }
        os << "]}";
    }
    os << "],";

    os << "\"stalls\":{";
    first = true;
    for (const auto &[reason, t] : stalls_) {
        os << (first ? "" : ",") << '"' << jsonEscape(reason)
           << "\":{\"warps\":" << t.warps
           << ",\"cycles\":" << t.cycles << "}";
        first = false;
    }
    os << "},";

    os << "\"heat\":{\"total_walks\":" << heat_.totalWalks()
       << ",\"total_refs\":" << heat_.totalRefs()
       << ",\"pages_touched\":" << heat_.pages().size()
       << ",\"lines_touched\":" << heat_.lines().size()
       << ",\"top_pages\":[";
    first = true;
    for (const auto &[vpn, p] : heat_.topPages(cfg_.topK)) {
        // Page keys are ASID-composed; export the halves separately
        // so consumers never have to know the composition shift.
        os << (first ? "" : ",") << "{\"asid\":" << keyAsid(vpn)
           << ",\"vpn\":" << keyLocal(vpn)
           << ",\"walks\":" << p.walks
           << ",\"walk_cycles\":" << p.walkCycles
           << ",\"max_latency\":" << p.maxLatency
           << ",\"sharers\":" << p.sharers() << "}";
        first = false;
    }
    os << "],\"top_lines\":[";
    first = true;
    for (const auto &[line, l] : heat_.topLines(cfg_.topK)) {
        os << (first ? "" : ",") << "{\"line\":" << line
           << ",\"level\":" << l.level << ",\"refs\":" << l.refs
           << ",\"pwc_hits\":" << l.pwcHits
           << ",\"l2_refs\":" << l.l2Refs
           << ",\"dram_refs\":" << l.dramRefs
           << ",\"sharers\":" << l.sharers() << "}";
        first = false;
    }
    os << "]}}";
}

bool
Telemetry::writeJsonFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    writeJson(f);
    return f.good();
}

} // namespace gpummu
