/**
 * @file
 * Translation-lifecycle span tracing.
 *
 * A SpanTracker follows one translation request end to end: a span
 * opens at the L1-TLB lookup (or at the memory stage's IOMMU
 * departure) and records cycle-stamped stage transitions through L1
 * hit/miss, the shared L2 TLB (lookup, MSHR merge, bypass), the page
 * walkers (enqueue vs grant — the queueing/service split), the IOMMU
 * path, and the final fill/wakeup. Spans are keyed by the same
 * ASID-composed `(asid<<44)|vpn` keys the TLBs index by, so
 * per-tenant breakdowns fall out of the key algebra for free.
 *
 * Like TraceSink and Telemetry, span tracking is strictly
 * observation-only: components hold a `SpanTracker *` that defaults
 * to nullptr, every hook is one pointer test, the tracker registers
 * no stats and feeds nothing back, so armed and unarmed runs are
 * bit-identical (test_spans enforces this on every registry
 * workload).
 *
 * Accounting model: each recorded transition is attributed the
 * "arrival interval" since the span's previous transition, labeled
 * with the stage just reached. Intervals telescope, so the per-stage
 * sums of one span add up to its end-to-end latency exactly — no
 * double-counted or lost cycles — and every stage is classified as
 * queueing (waiting for a resource: walker grant, L2 port, IOMMU
 * port/interconnect) or service, giving an exact queueing-vs-service
 * decomposition per span.
 *
 * Memory stays bounded on arbitrarily long runs: closed spans fold
 * into per-stage histograms (sim/stats.hh, with p50/p95/p99) and a
 * per-ASID end-to-end table; only the top-K slowest spans keep their
 * full timelines.
 */

#ifndef TELEMETRY_SPAN_HH
#define TELEMETRY_SPAN_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

class EventQueue;
class TraceSink;

/** Lifecycle stage a translation span transitions through. */
enum class SpanStage : std::uint8_t
{
    L1Lookup,    ///< span opens: per-core L1 TLB probe
    L1Hit,       ///< L1 hit; the span closes immediately
    L1Miss,      ///< L1 miss; the walk machinery takes over
    MmuMerge,    ///< merged into an outstanding per-core walk
    L2Lookup,    ///< shared L2 TLB probe issued (after port wait)
    L2Hit,       ///< L2 hit; wake at its hit latency
    L2Merge,     ///< merged into an L2 translation MSHR
    L2Bypass,    ///< L2 MSHRs exhausted; walk bypasses the L2
    L2NeedWalk,  ///< L2 miss; an L2-owned walk starts
    WalkEnqueue, ///< queued at the page walkers
    WalkGrant,   ///< a walker picked it up (queueing ends)
    WalkDone,    ///< the walk retired (service ends)
    IommuDepart, ///< span opens: request leaves for the IOMMU
    IommuLookup, ///< IOMMU TLB probe issued (after icnt + port)
    IommuHit,    ///< IOMMU TLB hit; the span closes
    IommuMerge,  ///< merged into an outstanding IOMMU walk
    IommuFault,  ///< page fault raised before the IOMMU walk
    Fill,        ///< translation filled; waiters wake; span closes
};
inline constexpr std::size_t kNumSpanStages = 18;

/** Stable lower-case stage name ("l1_lookup", "walk_grant", ...). */
const char *spanStageName(SpanStage stage);

/** True for stages whose arrival interval is time spent *waiting*
 *  for a resource rather than being serviced by one. */
bool spanStageQueueing(SpanStage stage);

/** Where a page-walk memory reference was satisfied. */
enum class SpanWalkRef : std::uint8_t
{
    Pwc,  ///< page-walk-cache hit
    L2,   ///< L2 cache hit
    Dram, ///< DRAM access
};
inline constexpr std::size_t kNumSpanWalkRefs = 3;

class SpanTracker
{
  public:
    struct StageEvent
    {
        SpanStage stage;
        Cycle cycle;
    };

    /** A retired span; only the top-K slowest keep this form. */
    struct ClosedSpan
    {
        std::uint64_t id = 0;
        std::uint64_t key = 0; ///< (asid<<44)|vpn
        std::int32_t tid = 0;  ///< opening core id; -1 shared
        Cycle open = 0;
        Cycle close = 0;
        Cycle queueing = 0;
        Cycle service = 0;
        std::vector<StageEvent> timeline;

        Cycle latency() const { return close - open; }
    };

    explicit SpanTracker(std::size_t top_k = 32);

    /** Bind the clock used by the *Now hook variants. GpuTop binds
     *  its event queue when a tracker is attached to a run. */
    void bindClock(const EventQueue *eq) { clock_ = eq; }

    /**
     * Also emit Chrome-trace flow events ('s'/'t'/'f' under the core
     * category, one flow id per span) into @p sink, so spans render
     * as arrows across the component tracks in chrome://tracing.
     */
    void setTraceSink(TraceSink *sink) { sink_ = sink; }

    /** Retain the @p k slowest spans with full timelines. */
    void setTopK(std::size_t k) { topKLimit_ = k == 0 ? 1 : k; }

    /** Open a new span for @p key at the bound clock's cycle. */
    void openNow(std::uint64_t key, SpanStage stage, int tid);
    /** Open a new span for @p key at an explicit cycle. */
    void openAt(std::uint64_t key, SpanStage stage, Cycle at, int tid);
    /** Record a stage on the newest open span for @p key, or open
     *  one when none is outstanding (the IOMMU's shared entry). */
    void openOrStageAt(std::uint64_t key, SpanStage stage, Cycle at,
                       int tid);

    /** Record a transition on the newest open span for @p key at the
     *  bound clock's cycle; no-op when no span is open. */
    void stageNow(std::uint64_t key, SpanStage stage);
    /** Record a transition at an explicit cycle. */
    void stageAt(std::uint64_t key, SpanStage stage, Cycle at);

    /** Close the newest open span for @p key (the L1-hit path). */
    void closeNewestNow(std::uint64_t key, SpanStage stage);
    void closeNewestAt(std::uint64_t key, SpanStage stage, Cycle at);

    /**
     * Close every open span for @p key: a fill wakes the walk owner
     * and all merged waiters at the same ready cycle, so they retire
     * together. No-op when none are open (late duplicate fills).
     */
    void closeAllAt(std::uint64_t key, SpanStage stage, Cycle at);

    /** Count one page-walk memory reference for walk level
     *  @p level, satisfied at @p where. Kept globally (scheduled
     *  walk batches share references across walks), reconciling
     *  exactly with the walkers' refs_issued counter. */
    void walkRef(unsigned level, SpanWalkRef where);

    // --- Conservation queries (test_spans reconciles these against
    // --- the simulation's own counters). ---
    std::uint64_t spansOpened() const { return opened_; }
    std::uint64_t spansClosed() const { return closed_; }
    /** Spans still open (opened - closed). */
    std::uint64_t spansOpen() const { return opened_ - closed_; }
    std::uint64_t stageCount(SpanStage stage) const
    {
        return stageCounts_[static_cast<std::size_t>(stage)];
    }
    std::uint64_t walkRefs(SpanWalkRef where) const;
    std::uint64_t walkRefsTotal() const;
    bool empty() const { return closed_ == 0; }

    // --- Aggregates. ---
    const Histogram &stageHist(SpanStage stage) const
    {
        return stageHists_[static_cast<std::size_t>(stage)];
    }
    const Histogram &endToEnd() const { return endToEnd_; }
    const Histogram &queueing() const { return queueing_; }
    const Histogram &service() const { return service_; }
    /** Per-ASID end-to-end latency, ASID-ascending. */
    const std::map<Asid, Histogram> &perAsid() const
    {
        return perAsid_;
    }
    /** The K slowest spans: latency desc, then open asc, then id. */
    const std::vector<ClosedSpan> &topSpans() const { return topK_; }

    // --- Exports (byte-stable for identical runs). ---
    /** Human-readable stage table + queueing-vs-service split +
     *  slowest spans; for CLIs and EXPERIMENTS walkthroughs. */
    void writeSummary(std::ostream &os) const;
    /** CSV: stage table, per-ASID table and top-K span timelines as
     *  `#`-headed sections. */
    void writeCsv(std::ostream &os) const;
    bool writeCsvFile(const std::string &path) const;
    /** One JSON object: meta, stages, totals, per_asid, top_spans. */
    void writeJson(std::ostream &os) const;
    bool writeJsonFile(const std::string &path) const;

  private:
    struct OpenSpan
    {
        std::uint64_t key = 0;
        std::int32_t tid = 0;
        Cycle open = 0;
        std::vector<StageEvent> timeline;
    };

    Cycle nowFromClock() const;
    OpenSpan *newest(std::uint64_t key);
    void record(OpenSpan &sp, SpanStage stage, Cycle at);
    void closeSpan(std::uint64_t id, SpanStage stage, Cycle at);
    void considerTopK(ClosedSpan &&done);

    const EventQueue *clock_ = nullptr;
    TraceSink *sink_ = nullptr;
    std::size_t topKLimit_;

    std::uint64_t nextId_ = 1;
    std::uint64_t opened_ = 0;
    std::uint64_t closed_ = 0;

    /** Open spans by id, and per-key LIFO stacks of open ids (stage
     *  events attach to the newest; fills close the whole stack). */
    std::unordered_map<std::uint64_t, OpenSpan> spans_;
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        open_;

    std::array<Histogram, kNumSpanStages> stageHists_;
    std::array<std::uint64_t, kNumSpanStages> stageCounts_{};
    Histogram endToEnd_;
    Histogram queueing_;
    Histogram service_;
    std::map<Asid, Histogram> perAsid_;
    std::array<std::array<std::uint64_t, kNumSpanWalkRefs>, 4>
        walkRefs_{};
    std::vector<ClosedSpan> topK_;
};

} // namespace gpummu

#endif // TELEMETRY_SPAN_HH
