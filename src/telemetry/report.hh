/**
 * @file
 * Self-contained HTML run report.
 *
 * Renders one run's Telemetry as a single HTML file with no external
 * dependencies: inline CSS, inline JS and inline SVG charts drawn
 * from the telemetry JSON embedded in the page. Open it in any
 * browser, attach it to a CI run, mail it around - it needs nothing
 * but itself.
 *
 * Sections: run header, interval time series (selectable counter),
 * page-divergence series, stall-attribution breakdown, hot-page and
 * hot-PTE-line tables.
 */

#ifndef TELEMETRY_REPORT_HH
#define TELEMETRY_REPORT_HH

#include <ostream>
#include <string>

namespace gpummu {

class SpanTracker;
class Telemetry;

/**
 * Write the report for @p t. Returns false when the run produced no
 * page-walk attribution at all (an empty hot-page table means the
 * profiler was never hooked up - CI treats that as a failure) or, for
 * the file variant, on I/O failure; the page is still written either
 * way so the failure can be inspected.
 *
 * @p spans, when non-null and non-empty, adds a "translation latency
 * anatomy" section: per-stage latency decomposition with queueing vs
 * service split, per-ASID end-to-end columns, and the slowest spans
 * with their full stage timelines.
 */
bool writeHtmlReport(std::ostream &os, const Telemetry &t,
                     const SpanTracker *spans = nullptr);
bool writeHtmlReportFile(const std::string &path, const Telemetry &t,
                         const SpanTracker *spans = nullptr);

/**
 * The shared single-file page shell (doctype, inline CSS, <body>
 * open) every gpummu HTML report renders into, so the run report and
 * the DSE comparison report look and behave identically. The caller
 * emits its own sections and closes the document.
 */
const char *htmlReportHead();

/**
 * Make a JSON payload safe for embedding in an inline <script>
 * block: "</" inside string values would end the script element
 * early, so it is re-emitted as the equivalent JSON escape "<\/".
 */
std::string htmlScriptSafeJson(const std::string &json);

} // namespace gpummu

#endif // TELEMETRY_REPORT_HH
