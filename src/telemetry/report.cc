#include "telemetry/report.hh"

#include <fstream>
#include <sstream>

#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"

namespace gpummu {

std::string
htmlScriptSafeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '<' && i + 1 < s.size() && s[i + 1] == '/') {
            out += "<\\/";
            ++i;
        } else {
            out += s[i];
        }
    }
    return out;
}

namespace {

std::string
scriptSafeJson(const Telemetry &t)
{
    std::ostringstream ss;
    t.writeJson(ss);
    return htmlScriptSafeJson(ss.str());
}

std::string
scriptSafeSpanJson(const SpanTracker &spans)
{
    std::ostringstream ss;
    spans.writeJson(ss);
    return htmlScriptSafeJson(ss.str());
}

// The "translation latency anatomy" section renders from its own
// embedded SPANS object so span-armed and span-less reports share the
// same page shell; the script is self-contained (runs before the main
// render() is even defined).
constexpr const char *kSpanSection = R"html(<h2>Translation latency anatomy</h2>
<div class="meta" id="spanmeta"></div>
<table><thead><tr><th class="k">stage</th><th class="k">class</th>
<th>count</th><th>cycles</th><th>mean</th><th>p50</th><th>p95</th>
<th>p99</th></tr></thead><tbody id="spanstages"></tbody></table>
<div id="perasidbox" style="display:none">
<h2>Per-ASID end-to-end latency</h2>
<table><thead><tr><th>asid</th><th>count</th><th>cycles</th>
<th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th>
</tr></thead><tbody id="spanasids"></tbody></table></div>
<h2>Slowest spans</h2>
<table><thead><tr><th>rank</th><th class="k">asid:vpn</th>
<th>tid</th><th>open</th><th>latency</th><th>queueing</th>
<th>service</th><th class="k">timeline</th></tr></thead>
<tbody id="spantop"></tbody></table>
)html";

constexpr const char *kSpanScript = R"html(<script>
"use strict";
(function(){
  var s=SPANS,f=function(n){return Number(n).toLocaleString("en-US");};
  document.getElementById("spanmeta").textContent=
    f(s.meta.spans_opened)+" spans opened, "+
    f(s.meta.spans_closed)+" closed, "+
    f(s.meta.spans_open_at_end)+" open at end; "+
    f(s.meta.walk_refs.total)+" walk refs ("+
    f(s.meta.walk_refs.pwc)+" pwc / "+f(s.meta.walk_refs.l2)+
    " l2 / "+f(s.meta.walk_refs.dram)+" dram)";
  var tb=document.getElementById("spanstages");
  s.stages.forEach(function(r){
    var tr=document.createElement("tr");
    function td(v,k){var c=document.createElement("td");
      if(k)c.className="k";c.textContent=v;tr.appendChild(c);}
    td(r.stage,1);td(r["class"],1);td(f(r.stats.count));
    td(f(r.stats.cycles));td(r.stats.mean.toFixed(1));
    td(f(r.stats.p50));td(f(r.stats.p95));td(f(r.stats.p99));
    tb.appendChild(tr);
  });
  if(s.per_asid.length>1){
    document.getElementById("perasidbox").style.display="";
    var ab=document.getElementById("spanasids");
    s.per_asid.forEach(function(r){
      var tr=document.createElement("tr");
      [r.asid,f(r.stats.count),f(r.stats.cycles),
       r.stats.mean.toFixed(1),f(r.stats.p50),f(r.stats.p95),
       f(r.stats.p99),f(r.stats.max)].forEach(function(v){
        var c=document.createElement("td");c.textContent=v;
        tr.appendChild(c);});
      ab.appendChild(tr);
    });
  }
  var tp=document.getElementById("spantop");
  s.top_spans.forEach(function(sp,i){
    var tr=document.createElement("tr");
    function td(v,k){var c=document.createElement("td");
      if(k)c.className="k";c.textContent=v;tr.appendChild(c);}
    td(i+1);td(sp.asid+":0x"+sp.vpn.toString(16),1);td(sp.tid);
    td(f(sp.open));td(f(sp.latency));td(f(sp.queueing));
    td(f(sp.service));
    td(sp.timeline.map(function(ev){
      return ev.stage+"@+"+(ev.cycle-sp.open);}).join(" → "),1);
    tp.appendChild(tr);
  });
})();
</script>
)html";

// The page shell. Everything that varies is in the embedded DATA
// object; the script below renders from it, so the C++ side stays a
// dumb serializer and the layout lives in one place.
constexpr const char *kHead = R"html(<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>gpummu run report</title>
<style>
body{font:14px/1.45 system-ui,sans-serif;margin:24px;max-width:1100px;
     color:#1a1a1a;background:#fff}
h1{font-size:20px;margin:0 0 4px}
h2{font-size:16px;margin:28px 0 8px;border-bottom:1px solid #ddd;
   padding-bottom:4px}
.meta{color:#555;margin-bottom:16px}
table{border-collapse:collapse;margin:8px 0;font-variant-numeric:tabular-nums}
th,td{border:1px solid #ccc;padding:3px 10px;text-align:right}
th{background:#f2f2f2}
td.k,th.k{text-align:left;font-family:ui-monospace,monospace}
svg{background:#fafafa;border:1px solid #ddd}
select{font:inherit;margin-bottom:6px}
.bar{fill:#4878a8}.bar2{fill:#b04a4a}
.axis{stroke:#999;stroke-width:1}
.line{fill:none;stroke:#4878a8;stroke-width:1.5}
.lbl{font-size:11px;fill:#555}
.warn{color:#b04a4a;font-weight:600}
</style></head><body>
)html";

constexpr const char *kScript = R"html(<script>
"use strict";
function fmt(n){return Number(n).toLocaleString("en-US");}
function el(tag,attrs,parent){
  var ns="http://www.w3.org/2000/svg";
  var svgTags={svg:1,polyline:1,line:1,rect:1,text:1};
  var e=svgTags[tag]?document.createElementNS(ns,tag)
                    :document.createElement(tag);
  for(var k in attrs)e.setAttribute(k,attrs[k]);
  if(parent)parent.appendChild(e);
  return e;
}
// Line chart of per-interval values.
function lineChart(parent,xs,ys,yLabel){
  var W=1040,H=220,L=70,B=24,T=10,R=10;
  var svg=el("svg",{width:W,height:H},parent);
  var ymax=Math.max(1,Math.max.apply(null,ys));
  var xmax=Math.max(1,xs[xs.length-1]||1);
  el("line",{x1:L,y1:H-B,x2:W-R,y2:H-B,"class":"axis"},svg);
  el("line",{x1:L,y1:T,x2:L,y2:H-B,"class":"axis"},svg);
  var pts=[];
  for(var i=0;i<ys.length;i++){
    var x=L+(W-L-R)*(xs[i]/xmax);
    var y=(H-B)-(H-B-T)*(ys[i]/ymax);
    pts.push(x.toFixed(1)+","+y.toFixed(1));
  }
  el("polyline",{points:pts.join(" "),"class":"line"},svg);
  el("text",{x:L-6,y:T+10,"text-anchor":"end","class":"lbl"},svg)
    .textContent=fmt(ymax);
  el("text",{x:L-6,y:H-B,"text-anchor":"end","class":"lbl"},svg)
    .textContent="0";
  el("text",{x:W-R,y:H-6,"text-anchor":"end","class":"lbl"},svg)
    .textContent=fmt(xmax)+" cycles";
  el("text",{x:L+6,y:T+10,"class":"lbl"},svg).textContent=yLabel;
}
function render(){
  var d=DATA;
  document.getElementById("meta").textContent=
    "benchmark "+d.meta.bench+" · config "+d.meta.config+
    " · "+fmt(d.meta.run_cycles)+" cycles · interval "+
    fmt(d.meta.sample_interval)+" cycles · "+
    d.intervals.length+" intervals";
  // Counter series with column selector.
  var sel=document.getElementById("colsel");
  d.columns.forEach(function(c,i){
    var o=el("option",{value:i},sel);o.textContent=c;
  });
  var prefer=d.columns.indexOf("mem.dram.accesses");
  sel.value=prefer>=0?prefer:0;
  function drawCounter(){
    var box=document.getElementById("counterchart");
    box.innerHTML="";
    var ci=+sel.value;
    var xs=d.intervals.map(function(iv){return iv.end;});
    var ys=d.intervals.map(function(iv){return iv.delta[ci];});
    lineChart(box,xs,ys,d.columns[ci]+" / interval");
  }
  sel.onchange=drawCounter;drawCounter();
  // Page divergence series (mean pages per warp memory instr).
  var xs=d.intervals.map(function(iv){return iv.end;});
  var ys=d.intervals.map(function(iv){
    return iv.page_div.n?iv.page_div.sum/iv.page_div.n:0;});
  lineChart(document.getElementById("divchart"),xs,ys,
            "mean pages / warp mem instr");
  // Stall breakdown.
  var st=document.getElementById("stalls");
  var reasons=Object.keys(d.stalls);
  var total=reasons.reduce(function(a,r){
    return a+d.stalls[r].cycles;},0);
  reasons.sort(function(a,b){
    return d.stalls[b].cycles-d.stalls[a].cycles||
           (a<b?-1:1);});
  reasons.forEach(function(r){
    var tr=el("tr",{},st);
    el("td",{"class":"k"},tr).textContent=r;
    el("td",{},tr).textContent=fmt(d.stalls[r].warps);
    el("td",{},tr).textContent=fmt(d.stalls[r].cycles);
    el("td",{},tr).textContent=
      total?(100*d.stalls[r].cycles/total).toFixed(1)+"%":"-";
  });
  // Heat tables.
  var hp=document.getElementById("hotpages");
  d.heat.top_pages.forEach(function(p){
    var tr=el("tr",{},hp);
    el("td",{"class":"k"},tr).textContent=
      p.asid+":0x"+p.vpn.toString(16);
    el("td",{},tr).textContent=fmt(p.walks);
    el("td",{},tr).textContent=fmt(p.walk_cycles);
    el("td",{},tr).textContent=
      p.walks?fmt(Math.round(p.walk_cycles/p.walks)):"-";
    el("td",{},tr).textContent=fmt(p.max_latency);
    el("td",{},tr).textContent=p.sharers;
  });
  var hl=document.getElementById("hotlines");
  d.heat.top_lines.forEach(function(l){
    var tr=el("tr",{},hl);
    el("td",{"class":"k"},tr).textContent=
      "0x"+l.line.toString(16);
    el("td",{},tr).textContent=l.level;
    el("td",{},tr).textContent=fmt(l.refs);
    el("td",{},tr).textContent=fmt(l.pwc_hits);
    el("td",{},tr).textContent=fmt(l.l2_refs);
    el("td",{},tr).textContent=fmt(l.dram_refs);
    el("td",{},tr).textContent=l.sharers;
  });
  document.getElementById("heatsum").textContent=
    fmt(d.heat.total_walks)+" walks over "+
    fmt(d.heat.pages_touched)+" pages; "+
    fmt(d.heat.total_refs)+" page-table references over "+
    fmt(d.heat.lines_touched)+" lines";
}
render();
</script></body></html>
)html";

} // namespace

const char *
htmlReportHead()
{
    return kHead;
}

bool
writeHtmlReport(std::ostream &os, const Telemetry &t,
                const SpanTracker *spans)
{
    const bool hasHeat = !t.heat().pages().empty();
    const bool hasSpans = spans != nullptr && !spans->empty();
    os << kHead;
    os << "<h1>gpummu run report</h1>\n<div class=\"meta\" "
          "id=\"meta\"></div>\n";
    if (!hasHeat) {
        os << "<p class=\"warn\">Empty hot-page table: no page walks "
              "were attributed. The heat profiler was not armed or "
              "the run performed no walks.</p>\n";
    }
    os << "<h2>Counter time series</h2>\n"
          "<select id=\"colsel\"></select>\n"
          "<div id=\"counterchart\"></div>\n"
          "<h2>Page divergence</h2>\n<div id=\"divchart\"></div>\n"
          "<h2>Stall attribution</h2>\n"
          "<table><thead><tr><th class=\"k\">reason</th>"
          "<th>warps</th><th>cycles</th><th>share</th></tr></thead>"
          "<tbody id=\"stalls\"></tbody></table>\n"
          "<h2>Hot pages</h2>\n<div class=\"meta\" "
          "id=\"heatsum\"></div>\n"
          "<table><thead><tr><th class=\"k\">asid:vpn</th><th>walks</th>"
          "<th>walk cycles</th><th>mean lat</th><th>max lat</th>"
          "<th>sharers</th></tr></thead>"
          "<tbody id=\"hotpages\"></tbody></table>\n"
          "<h2>Hot page-table lines</h2>\n"
          "<table><thead><tr><th class=\"k\">line</th><th>level</th>"
          "<th>refs</th><th>pwc hits</th><th>l2 refs</th>"
          "<th>dram refs</th><th>sharers</th></tr></thead>"
          "<tbody id=\"hotlines\"></tbody></table>\n";
    if (hasSpans) {
        os << kSpanSection;
        os << "<script>const SPANS=" << scriptSafeSpanJson(*spans)
           << ";</script>\n";
        os << kSpanScript;
    }
    os << "<script>const DATA=" << scriptSafeJson(t)
       << ";</script>\n";
    os << kScript;
    return hasHeat;
}

bool
writeHtmlReportFile(const std::string &path, const Telemetry &t,
                    const SpanTracker *spans)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const bool ok = writeHtmlReport(f, t, spans);
    return f.good() && ok;
}

} // namespace gpummu
