/**
 * @file
 * Interval telemetry and translation heat profiling.
 *
 * The paper's interesting results are *phase* phenomena - TLB miss
 * bursts at kernel start, page-divergence spikes, walker saturation
 * (Figs. 3-7) - which whole-run aggregates cannot show. This layer
 * makes them first-class:
 *
 *  - StatSampler snapshots every registered counter each N cycles,
 *    producing a per-interval time series (delta + cumulative) of the
 *    whole StatRegistry;
 *  - HeatProfiler attributes page-walk work to virtual pages and
 *    paging-structure cache lines: walks, walk cycles and sharer
 *    cores per VPN, references per line split by radix level and by
 *    where they hit (walk cache / shared L2 / DRAM), plus a
 *    per-interval page-divergence series (the Fig. 3 shape);
 *  - Telemetry bundles both for one run, drives interval boundaries
 *    off the cycle loop, and exports byte-stable CSV / JSON (and,
 *    via telemetry/report.hh, a self-contained HTML report).
 *
 * Telemetry is strictly observation-only, exactly like TraceSink:
 * components hold a nullptr-guarded HeatProfiler pointer, GpuTop
 * holds a nullptr-guarded Telemetry pointer, nothing is registered in
 * the StatRegistry, and armed vs unarmed runs are bit-identical (the
 * telemetry determinism tests enforce this). A Telemetry belongs to
 * exactly one run.
 */

#ifndef TELEMETRY_TELEMETRY_HH
#define TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

struct TelemetryConfig
{
    /** Cycles per sampling interval. */
    Cycle sampleInterval = 10'000;
    /** Rows in the exported hot-page / hot-line tables. */
    std::size_t topK = 32;
};

/**
 * Per-VPN and per-paging-structure-line walk attribution, hooked off
 * the page walker pools and the memory stage. All hooks are O(log n)
 * map updates on paths that already do comparable work per event.
 */
class HeatProfiler
{
  public:
    /** Where one page-table reference was satisfied. */
    enum class RefWhere : std::uint8_t
    {
        Pwc,  ///< per-core walk cache hit
        L2,   ///< shared L2 slice (hit or merged fill)
        Dram, ///< missed every cache; a DRAM channel serviced it
    };

    /** Walk attribution for one 4KB-granularity VPN. */
    struct PageStat
    {
        std::uint64_t walks = 0;
        std::uint64_t walkCycles = 0; ///< sum of enqueue->done times
        std::uint64_t maxLatency = 0;
        std::uint64_t sharerMask = 0; ///< bit per walker tid (63 = other)
        unsigned sharers() const;
    };

    /** Reference attribution for one page-table line address. */
    struct LineStat
    {
        std::uint64_t refs = 0;
        std::uint64_t pwcHits = 0;
        std::uint64_t l2Refs = 0;
        std::uint64_t dramRefs = 0;
        std::uint64_t sharerMask = 0;
        unsigned level = 0; ///< deepest radix level observed (0 = root)
        unsigned sharers() const;
    };

    /** One closed interval of the page-divergence series. */
    struct DivergenceInterval
    {
        std::uint64_t count = 0; ///< warp memory instructions
        std::uint64_t sum = 0;   ///< summed distinct-page counts
        std::uint64_t max = 0;
    };

    /** Walk completed: @p vpn at 4KB granularity, from walker pool
     *  @p tid, enqueued at @p enq, done at @p done. */
    void onWalkComplete(Vpn vpn, int tid, Cycle enq, Cycle done);

    /** One page-table reference to @p line at radix @p level. */
    void onWalkRef(PhysAddr line, unsigned level, int tid,
                   RefWhere where);

    /** One warp memory instruction touched @p pages distinct pages. */
    void onPageDivergence(std::uint64_t pages);

    /** Close the current page-divergence interval (Telemetry calls
     *  this at every sample boundary). */
    void rollInterval();

    const std::map<Vpn, PageStat> &pages() const { return pages_; }
    const std::map<PhysAddr, LineStat> &lines() const
    {
        return lines_;
    }
    const std::vector<DivergenceInterval> &divergenceSeries() const
    {
        return divSeries_;
    }

    /** Conservation handles: sums over the attribution tables. */
    std::uint64_t totalWalks() const { return totalWalks_; }
    std::uint64_t totalRefs() const { return totalRefs_; }
    std::uint64_t totalDivergenceSamples() const { return totalDivN_; }

    /** Top @p k pages by walk count (ties broken by VPN, so the
     *  ordering - and every export - is deterministic). */
    std::vector<std::pair<Vpn, PageStat>> topPages(std::size_t k) const;
    std::vector<std::pair<PhysAddr, LineStat>>
    topLines(std::size_t k) const;

  private:
    static std::uint64_t sharerBit(int tid);

    std::map<Vpn, PageStat> pages_;
    std::map<PhysAddr, LineStat> lines_;
    std::vector<DivergenceInterval> divSeries_;
    DivergenceInterval cur_;
    std::uint64_t totalWalks_ = 0;
    std::uint64_t totalRefs_ = 0;
    std::uint64_t totalDivN_ = 0;
};

/**
 * Cycle-driven snapshotter of every counter in a StatRegistry.
 * bind() captures the (sorted) name/pointer table once; sample()
 * records one cumulative row per interval. Deltas are derived at
 * export time from consecutive rows.
 */
class StatSampler
{
  public:
    struct Interval
    {
        Cycle start = 0;
        Cycle end = 0; ///< exclusive
        std::vector<std::uint64_t> cum;
    };

    /** Capture the registry's counters; call once, after every
     *  component has registered (registration is construction-time,
     *  so any point before the cycle loop works). */
    void bind(const StatRegistry &reg);

    bool bound() const { return !counters_.empty(); }

    /** Record the row for interval [start, end). */
    void sample(Cycle start, Cycle end);

    const std::vector<std::string> &names() const { return names_; }
    const std::vector<Interval> &intervals() const
    {
        return intervals_;
    }

  private:
    std::vector<std::string> names_;
    std::vector<const Counter *> counters_;
    std::vector<Interval> intervals_;
};

/**
 * Everything one run's telemetry produces. Arm with
 * GpuTop::setTelemetry() (or the telemetry parameter of
 * runConfigFull) before the cycle loop.
 */
class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig &cfg = {});

    const TelemetryConfig &config() const { return cfg_; }

    /** Bind the sampler to the run's registry (GpuTop calls this). */
    void begin(const StatRegistry &reg);

    /** Per-cycle hook from the cycle loop; closes an interval every
     *  sampleInterval cycles. */
    void
    tick(Cycle now)
    {
        if (now + 1 >= nextBoundary_)
            boundary(now + 1);
    }

    /** Cycle boundary the next interval closes at. The cycle loop
     *  must not fast-forward past nextBoundary() - 1: the counters an
     *  interval samples have to be fully charged before it closes. */
    Cycle nextBoundary() const { return nextBoundary_; }

    /** End of run at @p cycles: close the partial tail interval and
     *  snapshot the per-reason stall-attribution totals. */
    void finish(Cycle cycles, const StatRegistry &reg);

    bool finished() const { return finished_; }
    Cycle runCycles() const { return runCycles_; }

    HeatProfiler &heat() { return heat_; }
    const HeatProfiler &heat() const { return heat_; }
    const StatSampler &sampler() const { return sampler_; }

    /** Label the exports; runConfigFull sets these. */
    void setMeta(const std::string &bench, const std::string &config);
    const std::string &benchName() const { return bench_; }
    const std::string &configName() const { return config_; }

    /** Summed "<core>.stalls.<reason>" histograms, keyed by reason. */
    struct StallTotal
    {
        std::uint64_t warps = 0;  ///< warp slots that stalled
        std::uint64_t cycles = 0; ///< total attributed warp-cycles
    };
    const std::map<std::string, StallTotal> &stalls() const
    {
        return stalls_;
    }

    /**
     * Interval time series as CSV: one row per interval, one column
     * per counter holding the interval's *delta*, plus the
     * page-divergence columns. Byte-stable for identical runs.
     */
    void writeCsv(std::ostream &os) const;
    bool writeCsvFile(const std::string &path) const;

    /**
     * Full telemetry as one JSON object: meta, interval series
     * (delta + cumulative), stall totals and the top-K heat tables.
     * Byte-stable for identical runs; also the payload the HTML
     * report embeds.
     */
    void writeJson(std::ostream &os) const;
    bool writeJsonFile(const std::string &path) const;

  private:
    void boundary(Cycle at);

    TelemetryConfig cfg_;
    StatSampler sampler_;
    HeatProfiler heat_;
    Cycle nextBoundary_;
    Cycle lastBoundary_ = 0;
    bool finished_ = false;
    Cycle runCycles_ = 0;
    std::string bench_;
    std::string config_;
    std::map<std::string, StallTotal> stalls_;
};

} // namespace gpummu

#endif // TELEMETRY_TELEMETRY_HH
