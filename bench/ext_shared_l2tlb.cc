/**
 * @file
 * Extension experiment: a shared second-level TLB between the
 * per-core MMUs and their page walkers.
 *
 * The paper's augmented MMU backs each core's 128-entry TLB directly
 * with the walker pool; the heterogeneous-MMU design-space studies in
 * the related work (Kim et al., Mosaic) interpose a large shared L2
 * translation structure instead. This bench sweeps that design point
 * over L2 capacity x lookup ports on top of the paper's augmented
 * per-core MMU, reporting speedup over the augmented baseline and the
 * page-walk references the walkers still issue.
 *
 * Expected shape: walker refs_issued falls monotonically as the L2
 * grows (every L2 hit or MSHR merge is a walk that never happens) -
 * the binary checks that invariant and fails loudly if a sweep
 * violates it. Port count matters only when cores collide on the
 * shared structure, so its effect shows on the walk-heavy,
 * high-divergence workloads first.
 */

#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.10);
    Experiment exp(opt.params);

    const std::vector<std::size_t> kEntries = {512, 2048, 8192};
    const std::vector<unsigned> kPorts = {1, 4};

    const SystemConfig base = presets::noTlb();
    const SystemConfig aug = presets::augmentedTlb();
    std::vector<SystemConfig> l2cfgs;
    for (unsigned ports : kPorts) {
        for (std::size_t entries : kEntries)
            l2cfgs.push_back(
                presets::withSharedL2Tlb(aug, entries, ports));
    }

    std::cout << "=== Extension: shared L2 TLB size x ports sweep "
                 "===\nscale=" << opt.params.scale << "\n\n";

    std::vector<SystemConfig> all = {base, aug};
    all.insert(all.end(), l2cfgs.begin(), l2cfgs.end());
    benchutil::prewarm(exp, opt.benchmarks, all, opt.jobs);

    bool monotonic = true;
    for (unsigned ports : kPorts) {
        ReportTable table({"benchmark", "augmented", "l2-512e",
                           "l2-2048e", "l2-8192e", "walk-refs "
                           "aug/512/2048/8192"});
        std::cout << "--- " << ports << " L2 lookup port"
                  << (ports > 1 ? "s" : "") << " ---\n";
        for (BenchmarkId id : opt.benchmarks) {
            const double s_aug = exp.speedup(id, aug, base);
            std::vector<std::string> row = {benchmarkName(id),
                                            ReportTable::num(s_aug)};
            std::string refs = std::to_string(
                exp.run(id, aug).walkRefsIssued);
            std::uint64_t prev_refs =
                exp.run(id, aug).walkRefsIssued;
            for (std::size_t entries : kEntries) {
                const SystemConfig cfg =
                    presets::withSharedL2Tlb(aug, entries, ports);
                row.push_back(ReportTable::num(
                    exp.speedup(id, cfg, base)));
                const std::uint64_t r =
                    exp.run(id, cfg).walkRefsIssued;
                refs += "/" + std::to_string(r);
                // Each L2 hit or merge is a walk that never reaches
                // the walkers, so refs must not grow with capacity.
                if (r > prev_refs) {
                    monotonic = false;
                    std::cerr << "MONOTONICITY VIOLATION: "
                              << benchmarkName(id) << " @" << ports
                              << "p, " << entries << " entries: "
                              << r << " walk refs > " << prev_refs
                              << " at the previous size\n";
                }
                prev_refs = r;
            }
            row.push_back(refs);
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << (monotonic
                      ? "walker refs_issued monotonically "
                        "non-increasing with L2 capacity: OK\n"
                      : "walker refs_issued NOT monotonic - see "
                        "violations above\n");
    benchutil::maybeObserveRun(
        opt, presets::withSharedL2Tlb(aug, kEntries.back(),
                                      kPorts.back()));
    return monotonic ? 0 : 1;
}
