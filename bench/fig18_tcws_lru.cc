/**
 * @file
 * Figure 18 reproduction: TCWS with LRU-depth-weighted lost-locality
 * scoring. TLB hits bump the issuing warp's score by a weight
 * indexed by the hit's depth in the set's LRU stack, keeping
 * scheduling decisions frequent even when misses are rare. Paper
 * shape: LRU(1,2,4,8) performs best, within 1-15% of CCWS without
 * TLBs.
 */

#include <array>
#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig ccws_nt = presets::ccws(presets::noTlb());
    const SystemConfig plain =
        presets::tcws(presets::augmentedTlb(), 8, {0, 0, 0, 0});

    const std::array<std::array<std::uint64_t, 4>, 3> weightings = {
        std::array<std::uint64_t, 4>{1, 2, 3, 4},
        std::array<std::uint64_t, 4>{1, 2, 4, 8},
        std::array<std::uint64_t, 4>{1, 3, 6, 9},
    };

    std::cout << "=== Figure 18: TCWS LRU-depth weights ===\n"
              << "scale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "ccws(no-tlb)", "tcws-8epw",
                       "lru(1,2,3,4)", "lru(1,2,4,8)",
                       "lru(1,3,6,9)"});
    for (BenchmarkId id : opt.benchmarks) {
        std::vector<std::string> row{
            benchmarkName(id),
            ReportTable::num(exp.speedup(id, ccws_nt, base)),
            ReportTable::num(exp.speedup(id, plain, base))};
        for (const auto &w : weightings) {
            const auto cfg =
                presets::tcws(presets::augmentedTlb(), 8, w);
            row.push_back(
                ReportTable::num(exp.speedup(id, cfg, base)));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\npaper shape: LRU(1,2,4,8) typically best, within "
                 "1-15% of ccws(no-tlb).\n";
    benchutil::maybeObserveRun(opt, plain);
    return 0;
}
