/**
 * @file
 * Figure 22 reproduction: TLB-aware TBC as the common-page-matrix
 * counter width varies.
 *
 * Paper shape: even 1-bit counters improve markedly over TLB-
 * agnostic TBC; 3-bit counters land within 3-12% of TBC without
 * TLBs, recovering the page divergence that blind compaction added.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig tbc_nt = presets::tbc(presets::noTlb());
    const SystemConfig tbc_aug =
        presets::tbc(presets::augmentedTlb());

    std::cout << "=== Figure 22: TLB-aware TBC, CPM counter bits "
                 "===\nscale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "tbc(no-tlb)", "tbc+augmented",
                       "tlb-tbc-1b", "tlb-tbc-2b", "tlb-tbc-3b",
                       "pagediv(tbc)", "pagediv(3b)"});
    for (BenchmarkId id : opt.benchmarks) {
        std::vector<std::string> row{
            benchmarkName(id),
            ReportTable::num(exp.speedup(id, tbc_nt, base)),
            ReportTable::num(exp.speedup(id, tbc_aug, base))};
        RunStats three{};
        for (unsigned bits : {1u, 2u, 3u}) {
            const auto cfg =
                presets::tlbAwareTbc(presets::augmentedTlb(), bits);
            row.push_back(
                ReportTable::num(exp.speedup(id, cfg, base)));
            if (bits == 3)
                three = exp.run(id, cfg);
        }
        const RunStats agn = exp.run(id, tbc_aug);
        row.push_back(ReportTable::num(agn.avgPageDivergence, 2));
        row.push_back(ReportTable::num(three.avgPageDivergence, 2));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\npaper shape: CPM admission restores the page "
                 "divergence blind compaction added (last two "
                 "columns) and recovers most of the lost "
                 "performance; more counter bits help.\n";
    benchutil::maybeObserveRun(opt, tbc_aug);
    return 0;
}
