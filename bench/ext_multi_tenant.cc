/**
 * @file
 * Extension experiment: multi-tenant address translation.
 *
 * The paper's evaluation is single-process; its Section 2.2
 * programmability argument (context switches, shootdowns, paging)
 * is qualitative. This bench makes the OS side quantitative: two
 * processes with overlapping virtual ranges time-share an IOMMU-mode
 * GPU, demand-page their footprints, and pay context-switch,
 * minor-fault and TLB-shootdown costs on the shared translation
 * structures.
 *
 *   --scale=<f>                workload scale (default 0.05)
 *   --seed=<n>                 workload seed
 *   --bench-a/--bench-b=<name> the two tenants (default bfs +
 *                              pathfinder, the irregular/regular pair)
 *   --blocks-per-slice=<n>     time-slice quantum in thread blocks
 *   --switch-penalty=<cycles>  IOMMU context-switch cost
 *   --fault-latency=<cycles>   minor-fault service latency
 *   --shootdown-base=<cycles>  fixed shootdown initiation cost
 *   --shootdown-per-entry=<c>  per-invalidated-entry cost
 *   --eager                    eagerly back regions (no demand paging)
 *   --check                    arm the differential checker
 *   --trace=<file>             re-run with event tracing armed
 *   --sample-interval=<n>      telemetry interval for the re-run
 *   --sample-out=<file>        interval series (.csv or .json)
 *   --report=<file>            self-contained HTML run report
 *   --spans=<file>             re-run with translation-lifecycle
 *                              span tracking armed and export the
 *                              per-stage latency decomposition
 *                              (.csv or .json); span keys carry each
 *                              tenant's ASID, so the export breaks
 *                              the anatomy down per process
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/multi_tenant.hh"
#include "core/presets.hh"
#include "sim/parse_util.hh"
#include "telemetry/report.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

using namespace gpummu;

namespace {

BenchmarkId
benchByName(const char *name)
{
    for (BenchmarkId id : allBenchmarks()) {
        if (benchmarkName(id) == name)
            return id;
    }
    std::cerr << "unknown benchmark: " << name << "\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    MultiTenantConfig cfg = defaultMultiTenant(/*scale=*/0.05);
    cfg.params.seed = 42;
    std::string trace_file;
    Cycle sample_interval = 0;
    std::string sample_out;
    std::string report_file;
    std::string spans_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        // Numeric flags parse strictly (sim/parse_util.hh): the
        // whole value must be a number, or the flag is an error.
        auto bad = [&arg](const char *what) {
            std::cerr << arg << ": wants " << what << "\n";
            return 1;
        };
        if (const char *v = value("--scale")) {
            if (!parseDouble(v, cfg.params.scale) ||
                cfg.params.scale <= 0.0) {
                return bad("a positive number");
            }
        } else if (const char *v = value("--seed")) {
            if (!parseNum(v, cfg.params.seed))
                return bad("a non-negative int");
        } else if (const char *v = value("--bench-a")) {
            cfg.tenants.at(0) = {benchByName(v), v};
        } else if (const char *v = value("--bench-b")) {
            cfg.tenants.at(1) = {benchByName(v), v};
        } else if (const char *v = value("--blocks-per-slice")) {
            if (!parseNum(v, cfg.blocksPerSlice) ||
                cfg.blocksPerSlice == 0) {
                return bad("a positive int");
            }
        } else if (const char *v = value("--switch-penalty")) {
            if (!parseNum(v, cfg.os.switchPenalty))
                return bad("a cycle count");
        } else if (const char *v = value("--fault-latency")) {
            if (!parseNum(v, cfg.os.faultLatency))
                return bad("a cycle count");
        } else if (const char *v = value("--shootdown-base")) {
            if (!parseNum(v, cfg.os.shootdownBase))
                return bad("a cycle count");
        } else if (const char *v = value("--shootdown-per-entry")) {
            if (!parseNum(v, cfg.os.shootdownPerEntry))
                return bad("a cycle count");
        } else if (arg == "--eager") {
            cfg.lazyBacking = false;
        } else if (arg == "--check") {
            cfg.system.checkInvariants = true;
        } else if (const char *v = value("--trace")) {
            trace_file = v;
        } else if (const char *v = value("--sample-interval")) {
            if (!parseNum(v, sample_interval) ||
                sample_interval == 0) {
                return bad("a positive cycle count");
            }
        } else if (const char *v = value("--sample-out")) {
            sample_out = v;
        } else if (const char *v = value("--report")) {
            report_file = v;
        } else if (const char *v = value("--spans")) {
            spans_file = v;
            const std::string p = spans_file;
            const auto dot = p.rfind('.');
            const std::string ext =
                dot == std::string::npos ? "" : p.substr(dot);
            if (ext != ".csv" && ext != ".json") {
                std::cerr
                    << "--spans wants a .csv or .json path\n";
                return 1;
            }
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return 1;
        }
    }

    std::cout << "=== Extension: multi-tenant IOMMU (shootdowns, "
                 "faults, context switches) ===\nscale="
              << cfg.params.scale << " tenants="
              << cfg.tenants.at(0).name << "+"
              << cfg.tenants.at(1).name
              << " blocks/slice=" << cfg.blocksPerSlice
              << (cfg.lazyBacking ? " demand-paged" : " eager")
              << "\n\n";

    const MultiTenantResult res = runMultiTenant(cfg);

    std::cout << "tenant       asid  blocks  active-cycles  "
                 "instructions  ipc\n";
    std::cout << "------------------------------------------------"
                 "---------\n";
    for (const TenantResult &t : res.tenants) {
        const double ipc =
            t.activeCycles
                ? static_cast<double>(t.instructions) /
                      static_cast<double>(t.activeCycles)
                : 0.0;
        std::printf("%-12s %4u  %6llu  %13llu  %12llu  %.3f\n",
                    t.name.c_str(), t.asid,
                    static_cast<unsigned long long>(t.blocks),
                    static_cast<unsigned long long>(t.activeCycles),
                    static_cast<unsigned long long>(t.instructions),
                    ipc);
    }
    const double hit_rate =
        res.iommuLookups ? static_cast<double>(res.iommuHits) /
                               static_cast<double>(res.iommuLookups)
                         : 0.0;
    std::cout << "\ntotal cycles      " << res.totalCycles
              << "\nslices            " << res.slices
              << "\ncontext switches  " << res.contextSwitches
              << "\nshootdowns        " << res.shootdowns << " ("
              << res.shootdownEntries << " entries)"
              << "\nminor faults      " << res.faults
              << "\n2M coalesces      " << res.coalesces
              << " (splinters " << res.splinters << ")"
              << "\niommu hit rate    " << hit_rate << "\n";

    // One armed re-run serves --trace and --spans together so the
    // Chrome trace carries the translation span flow arrows.
    if (!trace_file.empty() || !spans_file.empty()) {
        TraceSink sink;
        SpanTracker spans;
        runMultiTenant(cfg,
                       trace_file.empty() ? nullptr : &sink, nullptr,
                       spans_file.empty() ? nullptr : &spans);
        if (!trace_file.empty()) {
            if (!sink.writeChromeTraceFile(trace_file)) {
                std::cerr << "failed to write trace: " << trace_file
                          << "\n";
                return 1;
            }
            std::cerr << "trace: " << sink.size() << " events -> "
                      << trace_file << "\n";
        }
        if (!spans_file.empty()) {
            if (spans.empty()) {
                std::cerr << "span table is empty: no translation "
                             "requests were observed\n";
                return 1;
            }
            const bool csv =
                spans_file.size() >= 4 &&
                spans_file.compare(spans_file.size() - 4, 4,
                                   ".csv") == 0;
            const bool ok = csv ? spans.writeCsvFile(spans_file)
                                : spans.writeJsonFile(spans_file);
            if (!ok) {
                std::cerr << "failed to write spans: " << spans_file
                          << "\n";
                return 1;
            }
            spans.writeSummary(std::cerr);
            std::cerr << "spans: " << spans.spansClosed()
                      << " closed (" << spans.spansOpen()
                      << " open at end) -> " << spans_file << "\n";
        }
    }
    if (sample_interval != 0) {
        TelemetryConfig tcfg;
        tcfg.sampleInterval = sample_interval;
        Telemetry telemetry(tcfg);
        SpanTracker spans;
        SpanTracker *span_arm =
            (!spans_file.empty() && !report_file.empty()) ? &spans
                                                          : nullptr;
        runMultiTenant(cfg, nullptr, &telemetry, span_arm);
        if (!sample_out.empty()) {
            const bool csv =
                sample_out.size() >= 4 &&
                sample_out.compare(sample_out.size() - 4, 4,
                                   ".csv") == 0;
            const bool ok =
                csv ? telemetry.writeCsvFile(sample_out)
                    : telemetry.writeJsonFile(sample_out);
            if (!ok) {
                std::cerr << "failed to write samples: " << sample_out
                          << "\n";
                return 1;
            }
            std::cerr << "telemetry: "
                      << telemetry.sampler().intervals().size()
                      << " intervals -> " << sample_out << "\n";
        }
        if (!report_file.empty()) {
            if (!writeHtmlReportFile(report_file, telemetry,
                                     span_arm)) {
                std::cerr << "report has an empty hot-page table: "
                          << report_file << "\n";
                return 1;
            }
            std::cerr << "report -> " << report_file << "\n";
        }
    }
    return 0;
}
