/**
 * @file
 * Figure 11 reproduction: one augmented PTW versus multiple naive
 * PTWs. Paper shape: the augmented single walker (non-blocking TLB +
 * walk scheduling) outperforms even 8 naive walkers, at far lower
 * area and power.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig aug = presets::augmentedTlb();

    std::cout << "=== Figure 11: augmented 1 PTW vs naive multi-PTW "
                 "===\nscale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "naive-1ptw", "naive-2ptw",
                       "naive-4ptw", "naive-8ptw", "augmented-1ptw"});
    for (BenchmarkId id : opt.benchmarks) {
        std::vector<std::string> row{benchmarkName(id)};
        for (unsigned walkers : {1u, 2u, 4u, 8u}) {
            const auto cfg = presets::naiveTlbMultiPtw(walkers);
            row.push_back(
                ReportTable::num(exp.speedup(id, cfg, base)));
        }
        row.push_back(ReportTable::num(exp.speedup(id, aug, base)));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\npaper shape: the augmented single PTW beats the "
                 "8-walker naive design.\n";
    // Observe the figure's own subject: the 8-walker naive point.
    // Pairs with fig02 (1-walker naive) for a two-walker-count
    // queueing-vs-service comparison via --spans (EXPERIMENTS.md).
    benchutil::maybeObserveRun(opt, presets::naiveTlbMultiPtw(8));
    return 0;
}
