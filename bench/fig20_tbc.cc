/**
 * @file
 * Figure 20 reproduction: thread block compaction meets address
 * translation.
 *
 * Paper shape: TBC loses 20%+ when naive TLBs are added (dynamic
 * warps mix threads with unrelated footprints, raising page
 * divergence by 2-4 and TLB miss rates by 5-10%); augmented TLBs
 * without TBC beat augmented TLBs with TBC.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(4);
    const SystemConfig aug = presets::augmentedTlb();
    const SystemConfig tbc_nt = presets::tbc(presets::noTlb());
    const SystemConfig tbc_naive = presets::tbc(presets::naiveTlb(4));
    const SystemConfig tbc_aug =
        presets::tbc(presets::augmentedTlb());

    std::cout << "=== Figure 20: TBC x address translation ===\n"
              << "scale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "tbc(no-tlb)", "tbc+naive",
                       "tbc+augmented", "augmented(no-tbc)",
                       "pagediv(no-tbc)", "pagediv(tbc)"});
    for (BenchmarkId id : opt.benchmarks) {
        const RunStats plain = exp.run(id, naive);
        const RunStats tbc = exp.run(id, tbc_naive);
        table.addRow(
            {benchmarkName(id),
             ReportTable::num(exp.speedup(id, tbc_nt, base)),
             ReportTable::num(exp.speedup(id, tbc_naive, base)),
             ReportTable::num(exp.speedup(id, tbc_aug, base)),
             ReportTable::num(exp.speedup(id, aug, base)),
             ReportTable::num(plain.avgPageDivergence, 2),
             ReportTable::num(tbc.avgPageDivergence, 2)});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: tbc+naive trails tbc(no-tlb) by "
                 ">20%; TBC raises page divergence by 2-4 (last two "
                 "columns); augmented without TBC beats augmented "
                 "with TBC.\n";
    benchutil::maybeObserveRun(opt, tbc_aug);
    return 0;
}
