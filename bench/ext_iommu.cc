/**
 * @file
 * Extension experiment: the Section 2.2 IOMMU organisation made
 * quantitative.
 *
 * The paper argues for L1-parallel per-core MMUs over today's
 * controller-resident IOMMUs on programmability grounds and does not
 * evaluate the IOMMU's performance. This bench fills that gap: a
 * 1024-entry shared IOMMU TLB with translation on the L1-miss path,
 * against the paper's naive and augmented per-core MMUs.
 *
 * Expected shape: the IOMMU benefits from its big TLB and from
 * translating only L1 misses, but pays shared-port serialization and
 * leaves GPU caches virtually addressed (the programmability costs
 * the paper enumerates are not modelled - that is the point).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(4);
    const SystemConfig aug = presets::augmentedTlb();
    const SystemConfig io = presets::iommu();

    std::cout << "=== Extension: IOMMU (Sec. 2.2) vs per-core MMUs "
                 "===\nscale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "naive-percore", "augmented",
                       "iommu", "iommu-vs-augmented"});
    for (BenchmarkId id : opt.benchmarks) {
        const double s_naive = exp.speedup(id, naive, base);
        const double s_aug = exp.speedup(id, aug, base);
        const double s_io = exp.speedup(id, io, base);
        table.addRow({benchmarkName(id), ReportTable::num(s_naive),
                      ReportTable::num(s_aug), ReportTable::num(s_io),
                      ReportTable::num(s_io / s_aug)});
    }
    table.print(std::cout);
    std::cout << "\nNote: the IOMMU keeps GPU caches virtually "
                 "addressed; the paper's programmability arguments "
                 "(synonyms, context switches, coherence) are why the "
                 "per-core design wins even where raw performance "
                 "is close.\n";
    benchutil::maybeObserveRun(opt, io);
    return 0;
}
