/**
 * @file
 * Figure 13 reproduction: cache-conscious wavefront scheduling with
 * and without address translation.
 *
 * Paper shape: CCWS without TLBs is the high bar; adding naive TLBs
 * forfeits most of it, and even augmented TLBs leave a gap - the
 * motivation for TLB-aware scheduling (Figs. 16-18).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(4);
    const SystemConfig aug = presets::augmentedTlb();
    const SystemConfig ccws_nt = presets::ccws(presets::noTlb());
    const SystemConfig ccws_naive =
        presets::ccws(presets::naiveTlb(4));
    const SystemConfig ccws_aug =
        presets::ccws(presets::augmentedTlb());

    std::cout << "=== Figure 13: CCWS x address translation ===\n"
              << "scale=" << opt.params.scale << "\n\n";

    benchutil::prewarm(exp, opt.benchmarks,
                       {base, naive, aug, ccws_nt, ccws_naive,
                        ccws_aug},
                       opt.jobs);

    ReportTable table({"benchmark", "naive-tlb", "augmented",
                       "ccws(no-tlb)", "ccws+naive", "ccws+augmented",
                       "ccws-tlbmiss%"});
    for (BenchmarkId id : opt.benchmarks) {
        const RunStats cs = exp.run(id, ccws_aug);
        table.addRow(
            {benchmarkName(id),
             ReportTable::num(exp.speedup(id, naive, base)),
             ReportTable::num(exp.speedup(id, aug, base)),
             ReportTable::num(exp.speedup(id, ccws_nt, base)),
             ReportTable::num(exp.speedup(id, ccws_naive, base)),
             ReportTable::num(exp.speedup(id, ccws_aug, base)),
             ReportTable::pct(cs.tlbMissRate())});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: ccws+naive and ccws+augmented trail "
                 "ccws(no-tlb); CCWS's locality throttling also cuts "
                 "the TLB miss rate (last column) - the hook the "
                 "TLB-aware variants exploit.\n";
    benchutil::maybeObserveRun(opt, ccws_aug);
    return 0;
}
