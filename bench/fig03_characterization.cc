/**
 * @file
 * Figure 3 reproduction: workload characterisation.
 *
 * Left plot: percentage of instructions that are memory references,
 * and 128-entry TLB miss rates (paper bands: mem refs < 25%, miss
 * rates 22-70%).
 * Right plot: average and maximum page divergence per warp (paper:
 * bfs > 4 and mummergpu > 8 average; maxima near the warp width).
 *
 * Measured on the naive 128-entry TLB configuration, as in the paper.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv);
    Experiment exp(opt.params);
    const SystemConfig naive = presets::naiveTlb(4);

    std::cout << "=== Figure 3: workload characterisation ===\n"
              << "scale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "mem-instr%", "tlb-miss%",
                       "avg-page-div", "max-page-div"});
    for (BenchmarkId id : opt.benchmarks) {
        const RunStats s = exp.run(id, naive);
        table.addRow({benchmarkName(id),
                      ReportTable::pct(s.memInstrFraction()),
                      ReportTable::pct(s.tlbMissRate()),
                      ReportTable::num(s.avgPageDivergence, 2),
                      std::to_string(s.maxPageDivergence)});
    }
    table.print(std::cout);

    std::cout << "\npaper shape: mem refs under 25%; TLB miss rates "
                 "22-70%;\n  bfs avg divergence > 4, mummergpu > 8; "
                 "max divergence near 32.\n";
    benchutil::maybeObserveRun(opt, naive);
    return 0;
}
