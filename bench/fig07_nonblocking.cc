/**
 * @file
 * Figure 7 reproduction: non-blocking TLB features on the 128-entry
 * 4-port MMU, against the impractical ideal (512 entries, 32 ports,
 * no access-time penalty).
 *
 * Paper shape: hits-under-misses improves on blocking; additionally
 * overlapping the missing warp's TLB-hitting cache accesses improves
 * further, approaching the ideal.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(4);
    const SystemConfig hum = presets::tlbHitUnderMiss();
    const SystemConfig ovl = presets::tlbCacheOverlap();
    const SystemConfig ideal = presets::idealTlb();

    std::cout << "=== Figure 7: non-blocking TLB features (128e/4p) "
                 "===\nscale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "blocking", "+hit-under-miss",
                       "+cache-overlap", "ideal-512e-32p"});
    for (BenchmarkId id : opt.benchmarks) {
        table.addRow({benchmarkName(id),
                      ReportTable::num(exp.speedup(id, naive, base)),
                      ReportTable::num(exp.speedup(id, hum, base)),
                      ReportTable::num(exp.speedup(id, ovl, base)),
                      ReportTable::num(exp.speedup(id, ideal, base))});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: each feature adds performance; "
                 "overlapped cache access brings several benchmarks "
                 "close to the impractical ideal.\n";
    benchutil::maybeObserveRun(opt, ovl);
    return 0;
}
