/**
 * @file
 * Figure 2 reproduction: the headline strawman result.
 *
 * Against a baseline GPU without TLBs, speedups of:
 *   - naive 3-ported blocking TLBs (degrades in every case);
 *   - CCWS without and with naive TLBs;
 *   - TBC without and with naive TLBs.
 *
 * Paper shape: naive TLBs degrade every benchmark (20-50%+); adding
 * naive TLBs to CCWS/TBC forfeits most of those schedulers' gains.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(3);
    const SystemConfig ccws_nt = presets::ccws(presets::noTlb());
    const SystemConfig ccws_tlb = presets::ccws(presets::naiveTlb(3));
    const SystemConfig tbc_nt = presets::tbc(presets::noTlb());
    const SystemConfig tbc_tlb = presets::tbc(presets::naiveTlb(3));

    std::cout << "=== Figure 2: naive 3-port TLBs vs no-TLB baseline "
                 "===\nscale=" << opt.params.scale << "\n\n";

    benchutil::prewarm(exp, opt.benchmarks,
                       {base, naive, ccws_nt, ccws_tlb, tbc_nt,
                        tbc_tlb},
                       opt.jobs);

    ReportTable table({"benchmark", "naive-tlb", "ccws", "ccws+tlb",
                       "tbc", "tbc+tlb"});
    std::vector<double> naive_speedups;
    for (BenchmarkId id : opt.benchmarks) {
        const double s_naive = exp.speedup(id, naive, base);
        naive_speedups.push_back(s_naive);
        table.addRow({benchmarkName(id), ReportTable::num(s_naive),
                      ReportTable::num(exp.speedup(id, ccws_nt, base)),
                      ReportTable::num(exp.speedup(id, ccws_tlb, base)),
                      ReportTable::num(exp.speedup(id, tbc_nt, base)),
                      ReportTable::num(exp.speedup(id, tbc_tlb, base))});
    }
    table.print(std::cout);
    std::cout << "\ngeomean naive-TLB speedup: "
              << ReportTable::num(benchutil::geomean(naive_speedups))
              << "\npaper shape: every naive-TLB value < 1 "
                 "(20-50%+ degradation); CCWS/TBC columns drop "
                 "substantially when naive TLBs are added.\n";
    benchutil::maybeObserveRun(opt, naive);
    return 0;
}
