/**
 * @file
 * Simulator-throughput benchmark (cycles-simulated per second).
 *
 * Runs a fixed suite of (workload, config) points — the six paper
 * workloads under the augmented TLB, plus the shared-L2-TLB and
 * IOMMU presets — and measures how fast the *simulator* gets through
 * them: cycles/sec and events/sec of wall clock. The deterministic
 * outputs (cycles, events fired, instructions) are recorded next to
 * the timings so two checkouts can be compared point-by-point and
 * any modelling drift is immediately visible.
 *
 * Usage:
 *   simbench [--scale=<f>] [--seed=<n>] [--repeat=<n>] [--quick]
 *            [--pr=<n>] [--bench-out=<path>]
 *            [--compare=<old.json>] [--regress-tol=<frac>]
 *
 *   --scale       workload scale factor (default 0.25)
 *   --seed        workload seed (default 42)
 *   --repeat      timed repeats per point; the best wall time is
 *                 reported, and every repeat must reproduce identical
 *                 cycles/events (the harness self-check; default 3)
 *   --quick       only the memcached and mummergpu augmented-TLB
 *                 points (the CI smoke configuration)
 *   --pr          PR sequence number; default output path is
 *                 BENCH_<pr>.json in the current directory
 *   --bench-out   explicit output path (overrides --pr naming)
 *   --compare     diff this run against an older BENCH_<n>.json:
 *                 per-point cycles/sec deltas for every point present
 *                 in both files, with a note when the deterministic
 *                 cycle/event counts drifted (a modelling change, so
 *                 the throughput delta is not apples-to-apples)
 *   --regress-tol fraction by which a common point's cycles/sec may
 *                 drop before --compare fails the run (default 1.0,
 *                 i.e. informational only; --regress-tol=0.15 fails
 *                 on any >15% throughput regression)
 *
 * Exit codes: 0 ok; 1 self-check, validation or --compare regression
 * failure; 2 bad usage or unwritable output path.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "sim/parse_util.hh"
#include "sim/perf_report.hh"

using namespace gpummu;

namespace {

struct SuitePoint
{
    BenchmarkId bench;
    std::string config;
    SystemConfig cfg;
};

std::vector<SuitePoint>
buildSuite(bool quick)
{
    std::vector<SuitePoint> suite;
    if (quick) {
        suite.push_back({BenchmarkId::Memcached, "augmented_tlb",
                         presets::augmentedTlb()});
        suite.push_back({BenchmarkId::Mummergpu, "augmented_tlb",
                         presets::augmentedTlb()});
        return suite;
    }
    for (BenchmarkId id : allBenchmarks())
        suite.push_back({id, "augmented_tlb", presets::augmentedTlb()});
    suite.push_back({BenchmarkId::Bfs, "shared_l2_tlb",
                     presets::withSharedL2Tlb(presets::augmentedTlb())});
    suite.push_back({BenchmarkId::Bfs, "iommu", presets::iommu()});
    return suite;
}

bool
parseArg(const std::string &arg, const std::string &key,
         std::string &out)
{
    const std::string pfx = key + "=";
    if (arg.rfind(pfx, 0) != 0)
        return false;
    out = arg.substr(pfx.size());
    return true;
}

/**
 * Diff @p report against the archived BENCH json at @p path:
 * per-point cycles/sec deltas for every point id present in both.
 * Returns the worst throughput ratio (new/old) across comparable
 * points, or a negative value when the old file cannot be read or
 * parsed (the caller treats that as usage error, not a regression).
 * Points whose deterministic cycles/events drifted are flagged: a
 * modelling change makes the wall-clock delta not apples-to-apples.
 */
double
comparePoints(const BenchReport &report, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::cerr << "simbench: --compare: cannot read '" << path
                  << "'\n";
        return -1.0;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    JsonValue doc;
    std::string err;
    if (!parseJson(buf.str(), doc, &err)) {
        std::cerr << "simbench: --compare: " << err << "\n";
        return -1.0;
    }
    const JsonValue *points = doc.find("points");
    if (points == nullptr ||
        points->kind != JsonValue::Kind::Array) {
        std::cerr << "simbench: --compare: '" << path
                  << "' has no points array\n";
        return -1.0;
    }
    const JsonValue *old_pr = doc.find("pr");
    std::cout << "\ncomparison vs " << path;
    if (old_pr != nullptr &&
        old_pr->kind == JsonValue::Kind::Number) {
        std::cout << " (pr " << static_cast<int>(old_pr->number)
                  << ")";
    }
    std::cout << ":\n";

    double worst_ratio = 1e300;
    std::size_t compared = 0;
    for (const BenchMeasurement &m : report.points) {
        const JsonValue *old_pt = nullptr;
        for (const JsonValue &p : points->items) {
            const JsonValue *id = p.find("point");
            if (id != nullptr &&
                id->kind == JsonValue::Kind::String &&
                id->str == m.point) {
                old_pt = &p;
                break;
            }
        }
        if (old_pt == nullptr) {
            std::cout << "  " << m.point
                      << ": not in old report (new point)\n";
            continue;
        }
        const JsonValue *old_cps = old_pt->find("cycles_per_sec");
        if (old_cps == nullptr ||
            old_cps->kind != JsonValue::Kind::Number ||
            !(old_cps->number > 0.0)) {
            std::cout << "  " << m.point
                      << ": old report lacks a usable "
                         "cycles_per_sec\n";
            continue;
        }
        const double ratio = m.cyclesPerSec() / old_cps->number;
        const double delta_pct = (ratio - 1.0) * 100.0;
        std::cout << "  " << m.point << ": "
                  << static_cast<std::uint64_t>(old_cps->number)
                  << " -> "
                  << static_cast<std::uint64_t>(m.cyclesPerSec())
                  << " cyc/s (" << (delta_pct >= 0.0 ? "+" : "")
                  << delta_pct << "%)";
        const JsonValue *oc = old_pt->find("cycles");
        const JsonValue *oe = old_pt->find("events_fired");
        const bool drifted =
            (oc != nullptr && oc->kind == JsonValue::Kind::Number &&
             static_cast<std::uint64_t>(oc->number) != m.cycles) ||
            (oe != nullptr && oe->kind == JsonValue::Kind::Number &&
             static_cast<std::uint64_t>(oe->number) !=
                 m.eventsFired);
        if (drifted) {
            std::cout << " [deterministic outputs drifted: "
                         "modelling change, not comparable]";
        } else {
            worst_ratio = std::min(worst_ratio, ratio);
            ++compared;
        }
        std::cout << "\n";
    }
    if (compared == 0) {
        std::cout << "  (no comparable points)\n";
        return 1.0;
    }
    return worst_ratio;
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadParams params;
    params.scale = 0.25;
    params.seed = 42;
    int repeat = 3;
    int pr = 10;
    bool quick = false;
    std::string out_path;
    std::string compare_path;
    double regress_tol = 1.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string val;
        // Strict full-token parses (sim/parse_util.hh): trailing
        // garbage, overflow and locale quirks are errors, never 0.
        if (parseArg(arg, "--scale", val)) {
            if (!parseDouble(val, params.scale)) {
                std::cerr << "simbench: bad --scale '" << val
                          << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--seed", val)) {
            if (!parseNum(val, params.seed)) {
                std::cerr << "simbench: bad --seed '" << val
                          << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--repeat", val)) {
            if (!parseNum(val, repeat)) {
                std::cerr << "simbench: bad --repeat '" << val
                          << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--pr", val)) {
            if (!parseNum(val, pr)) {
                std::cerr << "simbench: bad --pr '" << val << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--bench-out", val)) {
            out_path = val;
        } else if (parseArg(arg, "--compare", val)) {
            compare_path = val;
            if (compare_path.empty()) {
                std::cerr << "simbench: --compare wants a path\n";
                return 2;
            }
        } else if (parseArg(arg, "--regress-tol", val)) {
            if (!parseDouble(val, regress_tol) ||
                !(regress_tol >= 0.0) || !(regress_tol <= 1.0)) {
                std::cerr << "simbench: --regress-tol wants a "
                             "fraction in [0,1], got '"
                          << val << "'\n";
                return 2;
            }
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::cerr << "simbench: unknown argument '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (repeat < 1) {
        std::cerr << "simbench: --repeat must be >= 1\n";
        return 2;
    }
    if (out_path.empty())
        out_path = "BENCH_" + std::to_string(pr) + ".json";

    BenchReport report;
    report.pr = pr;
    report.scale = params.scale;
    report.seed = params.seed;
    report.repeat = repeat;

    for (const SuitePoint &pt : buildSuite(quick)) {
        const std::string bench_name = benchmarkName(pt.bench);
        BenchMeasurement m;
        m.point = bench_name + "/" + pt.config;
        m.benchmark = bench_name;
        m.config = pt.config;
        m.wallSeconds = -1.0;

        for (int r = 0; r < repeat; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            const RunStats s = runConfig(pt.bench, pt.cfg, params);
            const double dt =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (r == 0) {
                m.cycles = s.cycles;
                m.eventsFired = s.eventsFired;
                m.instructions = s.instructions;
            } else if (s.cycles != m.cycles ||
                       s.eventsFired != m.eventsFired) {
                // Non-deterministic replay: the numbers are garbage,
                // refuse to archive them.
                std::cerr << "simbench: self-check FAILED on "
                          << m.point << ": repeat " << r
                          << " simulated " << s.cycles << " cycles/"
                          << s.eventsFired << " events vs "
                          << m.cycles << "/" << m.eventsFired
                          << " on the first run\n";
                return 1;
            }
            if (m.wallSeconds < 0.0 || dt < m.wallSeconds)
                m.wallSeconds = dt;
        }
        std::cout << m.point << ": cycles=" << m.cycles
                  << " events=" << m.eventsFired
                  << " best_wall=" << m.wallSeconds
                  << "s cyc/s=" << static_cast<std::uint64_t>(
                                        m.cyclesPerSec())
                  << " ev/s=" << static_cast<std::uint64_t>(
                                      m.eventsPerSec())
                  << "\n";
        report.points.push_back(std::move(m));
    }

    std::string err;
    if (!report.writeFile(out_path, &err)) {
        std::cerr << "simbench: --bench-out: " << err << "\n";
        return 2;
    }

    // Re-read what we just wrote and validate it against the schema:
    // the artifact is only archived when it would also pass CI.
    std::ifstream is(out_path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    const BenchValidation v = validateBenchJson(buf.str());
    if (!v.ok()) {
        std::cerr << "simbench: emitted report fails validation:\n";
        for (const std::string &e : v.errors)
            std::cerr << "  " << e << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " ("
              << report.points.size() << " points, schema v"
              << kBenchSchemaVersion << ")\n";

    if (!compare_path.empty()) {
        const double worst = comparePoints(report, compare_path);
        if (worst < 0.0)
            return 2;
        if (worst < 1.0 - regress_tol) {
            std::cerr << "simbench: throughput regression: worst "
                         "comparable point at "
                      << worst << "x of " << compare_path
                      << " (tolerance " << (1.0 - regress_tol)
                      << "x)\n";
            return 1;
        }
    }
    return 0;
}
