/**
 * @file
 * Simulator-throughput benchmark (cycles-simulated per second).
 *
 * Runs a fixed suite of (workload, config) points — the six paper
 * workloads under the augmented TLB, plus the shared-L2-TLB and
 * IOMMU presets — and measures how fast the *simulator* gets through
 * them: cycles/sec and events/sec of wall clock. The deterministic
 * outputs (cycles, events fired, instructions) are recorded next to
 * the timings so two checkouts can be compared point-by-point and
 * any modelling drift is immediately visible.
 *
 * Usage:
 *   simbench [--scale=<f>] [--seed=<n>] [--repeat=<n>] [--quick]
 *            [--pr=<n>] [--bench-out=<path>]
 *
 *   --scale      workload scale factor (default 0.25)
 *   --seed       workload seed (default 42)
 *   --repeat     timed repeats per point; the best wall time is
 *                reported, and every repeat must reproduce identical
 *                cycles/events (the harness self-check; default 3)
 *   --quick      only the memcached and mummergpu augmented-TLB
 *                points (the CI smoke configuration)
 *   --pr         PR sequence number; default output path is
 *                BENCH_<pr>.json in the current directory
 *   --bench-out  explicit output path (overrides --pr naming)
 *
 * Exit codes: 0 ok; 1 self-check or validation failure; 2 bad usage
 * or unwritable output path.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "sim/parse_util.hh"
#include "sim/perf_report.hh"

using namespace gpummu;

namespace {

struct SuitePoint
{
    BenchmarkId bench;
    std::string config;
    SystemConfig cfg;
};

std::vector<SuitePoint>
buildSuite(bool quick)
{
    std::vector<SuitePoint> suite;
    if (quick) {
        suite.push_back({BenchmarkId::Memcached, "augmented_tlb",
                         presets::augmentedTlb()});
        suite.push_back({BenchmarkId::Mummergpu, "augmented_tlb",
                         presets::augmentedTlb()});
        return suite;
    }
    for (BenchmarkId id : allBenchmarks())
        suite.push_back({id, "augmented_tlb", presets::augmentedTlb()});
    suite.push_back({BenchmarkId::Bfs, "shared_l2_tlb",
                     presets::withSharedL2Tlb(presets::augmentedTlb())});
    suite.push_back({BenchmarkId::Bfs, "iommu", presets::iommu()});
    return suite;
}

bool
parseArg(const std::string &arg, const std::string &key,
         std::string &out)
{
    const std::string pfx = key + "=";
    if (arg.rfind(pfx, 0) != 0)
        return false;
    out = arg.substr(pfx.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadParams params;
    params.scale = 0.25;
    params.seed = 42;
    int repeat = 3;
    int pr = 6;
    bool quick = false;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string val;
        // Strict full-token parses (sim/parse_util.hh): trailing
        // garbage, overflow and locale quirks are errors, never 0.
        if (parseArg(arg, "--scale", val)) {
            if (!parseDouble(val, params.scale)) {
                std::cerr << "simbench: bad --scale '" << val
                          << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--seed", val)) {
            if (!parseNum(val, params.seed)) {
                std::cerr << "simbench: bad --seed '" << val
                          << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--repeat", val)) {
            if (!parseNum(val, repeat)) {
                std::cerr << "simbench: bad --repeat '" << val
                          << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--pr", val)) {
            if (!parseNum(val, pr)) {
                std::cerr << "simbench: bad --pr '" << val << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--bench-out", val)) {
            out_path = val;
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::cerr << "simbench: unknown argument '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (repeat < 1) {
        std::cerr << "simbench: --repeat must be >= 1\n";
        return 2;
    }
    if (out_path.empty())
        out_path = "BENCH_" + std::to_string(pr) + ".json";

    BenchReport report;
    report.pr = pr;
    report.scale = params.scale;
    report.seed = params.seed;
    report.repeat = repeat;

    for (const SuitePoint &pt : buildSuite(quick)) {
        const std::string bench_name = benchmarkName(pt.bench);
        BenchMeasurement m;
        m.point = bench_name + "/" + pt.config;
        m.benchmark = bench_name;
        m.config = pt.config;
        m.wallSeconds = -1.0;

        for (int r = 0; r < repeat; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            const RunStats s = runConfig(pt.bench, pt.cfg, params);
            const double dt =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (r == 0) {
                m.cycles = s.cycles;
                m.eventsFired = s.eventsFired;
                m.instructions = s.instructions;
            } else if (s.cycles != m.cycles ||
                       s.eventsFired != m.eventsFired) {
                // Non-deterministic replay: the numbers are garbage,
                // refuse to archive them.
                std::cerr << "simbench: self-check FAILED on "
                          << m.point << ": repeat " << r
                          << " simulated " << s.cycles << " cycles/"
                          << s.eventsFired << " events vs "
                          << m.cycles << "/" << m.eventsFired
                          << " on the first run\n";
                return 1;
            }
            if (m.wallSeconds < 0.0 || dt < m.wallSeconds)
                m.wallSeconds = dt;
        }
        std::cout << m.point << ": cycles=" << m.cycles
                  << " events=" << m.eventsFired
                  << " best_wall=" << m.wallSeconds
                  << "s cyc/s=" << static_cast<std::uint64_t>(
                                        m.cyclesPerSec())
                  << " ev/s=" << static_cast<std::uint64_t>(
                                      m.eventsPerSec())
                  << "\n";
        report.points.push_back(std::move(m));
    }

    std::string err;
    if (!report.writeFile(out_path, &err)) {
        std::cerr << "simbench: --bench-out: " << err << "\n";
        return 2;
    }

    // Re-read what we just wrote and validate it against the schema:
    // the artifact is only archived when it would also pass CI.
    std::ifstream is(out_path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    const BenchValidation v = validateBenchJson(buf.str());
    if (!v.ok()) {
        std::cerr << "simbench: emitted report fails validation:\n";
        for (const std::string &e : v.errors)
            std::cerr << "  " << e << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << " ("
              << report.points.size() << " points, schema v"
              << kBenchSchemaVersion << ")\n";
    return 0;
}
