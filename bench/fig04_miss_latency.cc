/**
 * @file
 * Figure 4 reproduction: average cycles per TLB miss vs per L1 cache
 * miss on the naive MMU. Paper shape: TLB misses cost roughly twice
 * as much as L1 misses (multiple page-table references per walk plus
 * serialization at the single PTW).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);
    const SystemConfig naive = presets::naiveTlb(4);

    std::cout << "=== Figure 4: TLB miss vs L1 miss latency (naive "
                 "MMU) ===\nscale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "l1-miss-cycles",
                       "tlb-miss-cycles", "ratio"});
    for (BenchmarkId id : opt.benchmarks) {
        const RunStats s = exp.run(id, naive);
        const double ratio =
            s.avgL1MissLatency > 0
                ? s.avgTlbMissLatency / s.avgL1MissLatency
                : 0.0;
        table.addRow({benchmarkName(id),
                      ReportTable::num(s.avgL1MissLatency, 0),
                      ReportTable::num(s.avgTlbMissLatency, 0),
                      ReportTable::num(ratio, 2)});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: TLB miss penalties are roughly twice "
                 "L1 miss penalties.\n";
    benchutil::maybeObserveRun(opt, naive);
    return 0;
}
