/**
 * @file
 * Pareto design-space autotuner driver (ROADMAP item 4).
 *
 *   dse_pareto [--grid=<name|spec>] [--bench=<name>] [--scale=<f>]
 *              [--seed=<n>] [--cores=<n>] [--jobs=<n>]
 *              [--resume-from=<json>] [--out=<json>]
 *              [--report=<html>]
 *
 * --grid takes a named grid (tiny | smoke | default) or a raw
 * "tlb_entries=64,128;walkers=1,1s;page=4k,2m" spec. Results are
 * keyed by a stable hash of (benchmark, seed, scale, cores, knobs);
 * --resume-from reloads a previous --out file and only simulates the
 * points it is missing, so a killed thousand-point sweep restarts
 * where it died and a completed one re-runs without simulating
 * anything. The emitted JSON is schema-versioned, validated before
 * the process exits, and byte-stable: fresh and fully-resumed sweeps
 * produce identical files.
 *
 * Exit codes: 0 ok, 1 usage/validation error, 2 I/O error.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/experiment.hh"
#include "dse/autotuner.hh"
#include "dse/report.hh"
#include "sim/parse_util.hh"

using namespace gpummu;

namespace {

// Strict full-token parsing comes from the shared helper
// (sim/parse_util.hh) — the local strtod-based copy this file used
// to carry moved there, locale-independent, for every bench CLI.

int
usage(const std::string &why)
{
    std::cerr << why << "\n"
              << "usage: dse_pareto [--grid=<tiny|smoke|default|"
                 "spec>] [--bench=<name>] [--scale=<f>] [--seed=<n>] "
                 "[--cores=<n>] [--jobs=<n>] [--resume-from=<json>] "
                 "[--out=<json>] [--report=<html>]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string grid_arg = "default";
    std::string resume_from;
    std::string out_path = "dse_frontier.json";
    std::string report_path;
    DseOptions opt;
    opt.params.scale = 0.05;
    opt.params.seed = 42;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        if (const char *v = value("--grid")) {
            grid_arg = v;
        } else if (const char *v = value("--bench")) {
            bool found = false;
            for (BenchmarkId id : allBenchmarks()) {
                if (benchmarkName(id) == v) {
                    opt.bench = id;
                    found = true;
                }
            }
            if (!found)
                return usage("unknown benchmark: " +
                             std::string(v));
        } else if (const char *v = value("--scale")) {
            if (!parseDouble(v, opt.params.scale) ||
                opt.params.scale <= 0) {
                return usage("--scale wants a positive number");
            }
        } else if (const char *v = value("--seed")) {
            if (!parseNum(v, opt.params.seed))
                return usage("--seed wants an unsigned integer");
        } else if (const char *v = value("--cores")) {
            if (!parseNum(v, opt.numCores) || opt.numCores == 0)
                return usage("--cores wants a positive integer");
        } else if (const char *v = value("--jobs")) {
            if (!parseNum(v, opt.jobs) || opt.jobs == 0)
                return usage("--jobs wants a positive integer");
        } else if (const char *v = value("--resume-from")) {
            resume_from = v;
        } else if (const char *v = value("--out")) {
            out_path = v;
            if (out_path.empty())
                return usage("--out wants a path");
        } else if (const char *v = value("--report")) {
            report_path = v;
            if (report_path.empty())
                return usage("--report wants a path");
        } else {
            return usage("unknown option: " + arg);
        }
    }

    DseGrid grid;
    if (!namedGrid(grid_arg, grid)) {
        std::string err;
        if (!parseGridSpec(grid_arg, grid, &err))
            return usage("bad --grid: " + err);
    }

    std::map<std::string, DsePointMetrics> cache;
    if (!resume_from.empty()) {
        std::ifstream f(resume_from, std::ios::binary);
        if (!f) {
            std::cerr << "cannot open --resume-from file '"
                      << resume_from << "'\n";
            return 2;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        std::string err;
        if (!loadDseCache(ss.str(), cache, &err)) {
            std::cerr << "bad --resume-from file '" << resume_from
                      << "': " << err << "\n";
            return 2;
        }
    }

    std::cout << "=== DSE Pareto autotuner ===\nbench="
              << benchmarkName(opt.bench)
              << " scale=" << opt.params.scale
              << " seed=" << opt.params.seed
              << " cores=" << opt.numCores << "\ngrid ("
              << grid.numPoints() << " points): "
              << gridSpecString(grid) << "\n";

    const DseResult result = runDse(grid, opt, cache);
    std::cout << "simulated " << result.simulated
              << " points, reused " << result.reused
              << " cached, frontier " << result.frontier.size()
              << " of " << result.points.size() << "\n\n";

    // Frontier table, cheapest area first.
    {
        ReportTable table(
            {"config", "cycles", "area", "tlb-miss", "walk-refs"});
        std::vector<std::size_t> order = result.frontier;
        std::sort(order.begin(), order.end(),
                  [&result](std::size_t a, std::size_t b) {
                      const auto &pa = result.points[a];
                      const auto &pb = result.points[b];
                      if (pa.area != pb.area)
                          return pa.area < pb.area;
                      return pa.metrics.cycles < pb.metrics.cycles;
                  });
        for (std::size_t idx : order) {
            const DsePointResult &p = result.points[idx];
            const double miss =
                p.metrics.tlbAccesses
                    ? 1.0 - static_cast<double>(p.metrics.tlbHits) /
                                static_cast<double>(
                                    p.metrics.tlbAccesses)
                    : 0.0;
            table.addRow({"dse-" + knobSpec(p.knobs),
                          std::to_string(p.metrics.cycles),
                          ReportTable::num(p.area, 2),
                          ReportTable::pct(miss),
                          std::to_string(p.metrics.walkRefsIssued)});
        }
        table.print(std::cout);
    }

    // Emit, then re-validate our own output: a writer regression
    // must fail the run, not archive a corrupt cache.
    const std::string json = emitDseJson(result);
    const DseValidation val = validateDseJson(json);
    if (!val.ok()) {
        for (const std::string &e : val.errors)
            std::cerr << "schema violation: " << e << "\n";
        return 1;
    }
    {
        std::ofstream f(out_path,
                        std::ios::binary | std::ios::trunc);
        if (!f || !(f << json) || !f.flush()) {
            std::cerr << "cannot write --out file '" << out_path
                      << "'\n";
            return 2;
        }
    }
    std::cout << "\nfrontier JSON -> " << out_path << "\n";

    if (!report_path.empty()) {
        if (!writeDseHtmlReportFile(report_path, result)) {
            std::cerr << "cannot write --report file '"
                      << report_path << "'\n";
            return 2;
        }
        std::cout << "HTML report -> " << report_path << "\n";
    }
    return 0;
}
