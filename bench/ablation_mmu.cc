/**
 * @file
 * Ablation study for the reproduction's own modelling choices
 * (DESIGN.md "calibration notes"): the page-walk cache, the bounded
 * walk-priority arbitration, and the walker issue-port interval.
 *
 * These are the substitutions that made the paper's numbers mutually
 * consistent in a from-scratch simulator; this bench shows how much
 * each one carries.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();

    auto aug = presets::augmentedTlb();

    auto no_pwc = aug;
    no_pwc.name = "augmented-no-pwc";
    no_pwc.core.mmu.ptw.pwcLines = 0;

    auto big_pwc = aug;
    big_pwc.name = "augmented-pwc64";
    big_pwc.core.mmu.ptw.pwcLines = 64;

    auto no_prio = aug;
    no_prio.name = "augmented-no-walkprio";
    no_prio.mem.prioritizeWalks = false;

    auto slow_port = aug;
    slow_port.name = "augmented-port8";
    slow_port.core.mmu.ptw.portInterval = 8;

    std::cout << "=== Ablations: walk cache / walk priority / walker "
                 "port ===\nscale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "augmented", "no-walk-cache",
                       "walk-cache-64", "no-walk-priority",
                       "port-interval-8"});
    for (BenchmarkId id : opt.benchmarks) {
        table.addRow({benchmarkName(id),
                      ReportTable::num(exp.speedup(id, aug, base)),
                      ReportTable::num(exp.speedup(id, no_pwc, base)),
                      ReportTable::num(exp.speedup(id, big_pwc, base)),
                      ReportTable::num(exp.speedup(id, no_prio, base)),
                      ReportTable::num(
                          exp.speedup(id, slow_port, base))});
    }
    table.print(std::cout);
    std::cout << "\nexpected: removing the 16-line walk cache or the "
                 "bounded walk priority costs the divergent "
                 "benchmarks heavily; doubling the walker port "
                 "interval costs batch-heavy workloads.\n";
    benchutil::maybeObserveRun(opt, aug);
    return 0;
}
