/**
 * @file
 * Section 9 reproduction: initial 2MB large-page results.
 *
 * Paper shape: large pages collapse page divergence and TLB miss
 * rates for most benchmarks, but the far-flung benchmarks
 * (mummergpu, bfs) retain meaningful divergence - their warps span
 * many megabytes per instruction.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig small = presets::naiveTlb(4);
    const SystemConfig large =
        presets::withLargePages(presets::naiveTlb(4));
    const SystemConfig aug_small = presets::augmentedTlb();
    const SystemConfig aug_large =
        presets::withLargePages(presets::augmentedTlb());

    std::cout << "=== Section 9: 4KB vs 2MB pages ===\nscale="
              << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "miss%-4k", "miss%-2m",
                       "pagediv-4k", "pagediv-2m", "naive-2m-speedup",
                       "aug-2m-speedup"});
    for (BenchmarkId id : opt.benchmarks) {
        const RunStats s4 = exp.run(id, small);
        const RunStats s2 = exp.run(id, large);
        table.addRow(
            {benchmarkName(id), ReportTable::pct(s4.tlbMissRate()),
             ReportTable::pct(s2.tlbMissRate()),
             ReportTable::num(s4.avgPageDivergence, 2),
             ReportTable::num(s2.avgPageDivergence, 2),
             ReportTable::num(exp.speedup(id, large, base)),
             ReportTable::num(exp.speedup(id, aug_large, base))});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: 2MB pages collapse divergence and "
                 "miss rates for most benchmarks; mummergpu/bfs "
                 "retain residual divergence (their accesses span "
                 "several 2MB regions).\n";
    (void)aug_small;
    benchutil::maybeObserveRun(opt, aug_large);
    return 0;
}
