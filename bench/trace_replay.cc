/**
 * @file
 * Memory-trace capture/replay driver (ROADMAP item 5).
 *
 * Capture a replayable memtrace from a registry benchmark, or replay
 * a previously captured trace back through the full TLB / PTW /
 * L2-TLB / IOMMU stack:
 *
 *   trace_replay --capture=<bench> --trace=<file> [--config=<name>]
 *                [--scale=<f>] [--seed=<n>] [--cores=<n>]
 *                [--stats-out=<json>] [--check]
 *   trace_replay --replay=<file> [--config=<name>] [--cores=<n>]
 *                [--stats-out=<json>] [--check]
 *
 * A capture run simulates the benchmark once with the observation-only
 * MemTraceWriter armed; because the writer registers no stats, the
 * run's JSON dump is byte-identical to an unarmed run's. Replaying the
 * trace under the same config reproduces that dump bit-for-bit (the CI
 * smoke job cmp's the two files); replaying under a *different*
 * --config treats the trace as a portable workload and drives the new
 * design point with the recorded reference stream.
 *
 * --config accepts the preset names the framework prints in stat
 * dumps (no-tlb, naive-tlb-<n>p, naive-tlb-<n>ptw, tlb-hum,
 * tlb-hum-overlap, augmented-tlb, ideal-tlb, iommu), optionally
 * suffixed with +2mb for large pages. Replay defaults to the config
 * recorded in the trace's meta line, falling back to augmented-tlb.
 *
 * Exit codes: 0 ok, 1 runtime error, 2 usage error.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "sim/parse_util.hh"
#include "trace/memtrace.hh"
#include "workloads/replay.hh"

using namespace gpummu;

namespace {

int
usage(const std::string &why)
{
    std::cerr << why << "\n"
              << "usage: trace_replay --capture=<bench> "
                 "--trace=<file> [--config=<name>] [--scale=<f>] "
                 "[--seed=<n>] [--cores=<n>] [--stats-out=<json>] "
                 "[--check]\n"
                 "       trace_replay --replay=<file> "
                 "[--config=<name>] [--cores=<n>] "
                 "[--stats-out=<json>] [--check]\n";
    return 2;
}

/**
 * Resolve a preset by the name it prints in stat dumps. A trailing
 * "+2mb" applies presets::withLargePages to the base preset, mirroring
 * how the names are composed.
 */
bool
configByName(const std::string &name, SystemConfig &out)
{
    std::string base = name;
    bool large = false;
    const std::string suffix = "+2mb";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(),
                     suffix) == 0) {
        large = true;
        base.resize(base.size() - suffix.size());
    }
    if (base == "no-tlb") {
        out = presets::noTlb();
    } else if (base == "naive-tlb-3p") {
        out = presets::naiveTlb(3);
    } else if (base == "naive-tlb-4p") {
        out = presets::naiveTlb(4);
    } else if (base == "naive-tlb-8ptw") {
        out = presets::naiveTlbMultiPtw(8);
    } else if (base == "tlb-hum") {
        out = presets::tlbHitUnderMiss();
    } else if (base == "tlb-hum-overlap") {
        out = presets::tlbCacheOverlap();
    } else if (base == "augmented-tlb") {
        out = presets::augmentedTlb();
    } else if (base == "ideal-tlb") {
        out = presets::idealTlb();
    } else if (base == "iommu") {
        out = presets::iommu();
    } else {
        return false;
    }
    if (large)
        out = presets::withLargePages(out);
    return true;
}

bool
writeStats(const std::string &path, const std::string &json)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f || !(f << json) || !f.flush())
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string capture_bench, trace_path, replay_path;
    std::string config_name, stats_out;
    WorkloadParams params;
    params.scale = 0.05;
    params.seed = 42;
    unsigned cores = 0;
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        if (const char *v = value("--capture")) {
            capture_bench = v;
        } else if (const char *v = value("--trace")) {
            trace_path = v;
        } else if (const char *v = value("--replay")) {
            replay_path = v;
        } else if (const char *v = value("--config")) {
            config_name = v;
        } else if (const char *v = value("--scale")) {
            if (!parseDouble(v, params.scale) || params.scale <= 0) {
                return usage("--scale wants a positive number, got '" +
                             std::string(v) + "'");
            }
        } else if (const char *v = value("--seed")) {
            if (!parseNum(v, params.seed)) {
                return usage("--seed wants an unsigned integer, "
                             "got '" + std::string(v) + "'");
            }
        } else if (const char *v = value("--cores")) {
            if (!parseNum(v, cores) || cores == 0) {
                return usage("--cores wants a positive integer, "
                             "got '" + std::string(v) + "'");
            }
        } else if (const char *v = value("--stats-out")) {
            stats_out = v;
            if (stats_out.empty())
                return usage("--stats-out wants a path");
        } else if (arg == "--check") {
            check = true;
        } else {
            return usage("unknown option: " + arg);
        }
    }

    const bool capturing = !capture_bench.empty();
    const bool replaying = !replay_path.empty();
    if (capturing == replaying)
        return usage("pick exactly one of --capture and --replay");
    if (capturing && trace_path.empty())
        return usage("--capture needs --trace=<output file>");
    if (replaying && !trace_path.empty())
        return usage("--trace is capture-only (the replay input is "
                     "--replay's value)");

    RunOutput out;
    SystemConfig cfg;
    if (capturing) {
        BenchmarkId bench = BenchmarkId::Bfs;
        bool found = false;
        for (BenchmarkId id : allBenchmarks()) {
            if (benchmarkName(id) == capture_bench) {
                bench = id;
                found = true;
            }
        }
        if (!found)
            return usage("unknown benchmark: " + capture_bench);
        if (config_name.empty())
            config_name = "augmented-tlb";
        if (!configByName(config_name, cfg))
            return usage("unknown --config: " + config_name);
        if (cores != 0)
            cfg.numCores = cores;
        cfg.checkInvariants = check;

        MemTraceWriter writer(trace_path);
        out = runConfigFull(bench, cfg, params, nullptr, nullptr,
                            &writer);
        std::cout << "captured " << writer.accessesRecorded()
                  << " accesses, " << writer.branchesRecorded()
                  << " branches -> " << trace_path << " ["
                  << capture_bench << " / " << cfg.name << "]\n";
    } else {
        auto workload = TraceReplayWorkload::fromFile(replay_path);
        if (config_name.empty()) {
            // Prefer the design point the trace was captured under.
            if (!configByName(workload->meta().config, cfg))
                cfg = presets::augmentedTlb();
        } else if (!configByName(config_name, cfg)) {
            return usage("unknown --config: " + config_name);
        }
        // Topology is run identity too: default to the recorded core
        // count so an unqualified replay is bit-identical.
        cfg.numCores = cores != 0 ? cores : workload->meta().numCores;
        cfg.checkInvariants = check;

        out = runWorkloadFull(*workload, cfg);
        std::cout << "replayed " << workload->meta().bench << " ("
                  << workload->meta().numBlocks << " blocks) on "
                  << cfg.name << ": cycles=" << out.stats.cycles
                  << " walk_refs=" << out.stats.walkRefsIssued
                  << " tlb_miss="
                  << ReportTable::pct(out.stats.tlbMissRate())
                  << "\n";
    }

    if (!stats_out.empty()) {
        if (!writeStats(stats_out, out.statsJson)) {
            std::cerr << "cannot write --stats-out file '"
                      << stats_out << "'\n";
            return 1;
        }
        std::cout << "stats JSON -> " << stats_out << "\n";
    }
    return 0;
}
