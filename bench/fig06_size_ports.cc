/**
 * @file
 * Figure 6 reproduction: TLB size and port-count design space for the
 * naive blocking MMU, with CACTI-style access times applied.
 *
 * Paper shape: bigger is better only until the access-time penalty
 * bites (128 entries is the sweet spot under real latencies), and
 * going from 3 to 4 ports recovers most of the port-limited loss
 * (page divergence rarely exceeds 4 after coalescing).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.1);
    Experiment exp(opt.params);
    const SystemConfig base = presets::noTlb();

    const std::size_t sizes[] = {64, 128, 256, 512};
    const unsigned ports[] = {3, 4, 32};

    std::cout << "=== Figure 6: TLB size x ports (naive MMU, real "
                 "access times) ===\nscale=" << opt.params.scale
              << "\n\n";

    std::vector<SystemConfig> grid_cfgs = {base};
    for (std::size_t size : sizes) {
        for (unsigned p : ports)
            grid_cfgs.push_back(presets::naiveTlbSized(size, p));
        grid_cfgs.push_back(presets::naiveTlbSized(size, 32, true));
    }
    benchutil::prewarm(exp, opt.benchmarks, grid_cfgs, opt.jobs);

    for (BenchmarkId id : opt.benchmarks) {
        std::cout << benchmarkName(id) << ":\n";
        ReportTable table({"entries", "3 ports", "4 ports",
                           "32 ports", "32p-ideal-latency"});
        for (std::size_t size : sizes) {
            std::vector<std::string> row{std::to_string(size)};
            for (unsigned p : ports) {
                const auto cfg = presets::naiveTlbSized(size, p);
                row.push_back(
                    ReportTable::num(exp.speedup(id, cfg, base)));
            }
            const auto ideal = presets::naiveTlbSized(size, 32, true);
            row.push_back(
                ReportTable::num(exp.speedup(id, ideal, base)));
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "paper shape: 128 entries best under real access "
                 "times; 3->4 ports recovers most port loss; the "
                 "ideal-latency column shows what the penalties "
                 "forfeit beyond 128 entries.\n";
    benchutil::maybeObserveRun(opt, presets::naiveTlbSized(128, 4));
    return 0;
}
