/**
 * @file
 * Figure 10 reproduction: adding PTW scheduling to the non-blocking
 * MMU (the paper's full augmented design).
 *
 * Paper shape: the augmented MMU lands within a few percent of the
 * ideal 512-entry/32-port TLB; PTW scheduling eliminates 10-20% of
 * page-walk memory references and raises walk cache hit rates.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig ovl = presets::tlbCacheOverlap();
    const SystemConfig aug = presets::augmentedTlb();
    const SystemConfig ideal = presets::idealTlb();

    std::cout << "=== Figure 10: + PTW scheduling (augmented MMU) "
                 "===\nscale=" << opt.params.scale << "\n\n";

    benchutil::prewarm(exp, opt.benchmarks, {base, ovl, aug, ideal},
                       opt.jobs);

    ReportTable table({"benchmark", "non-blocking", "+ptw-sched",
                       "ideal", "refs-eliminated%", "walk-l2-hit%"});
    for (BenchmarkId id : opt.benchmarks) {
        const RunStats s = exp.run(id, aug);
        const double elim =
            s.walkRefsIssued + s.walkRefsEliminated
                ? static_cast<double>(s.walkRefsEliminated) /
                      static_cast<double>(s.walkRefsIssued +
                                          s.walkRefsEliminated)
                : 0.0;
        const double wl2 =
            s.walkL2Accesses
                ? static_cast<double>(s.walkL2Hits) /
                      static_cast<double>(s.walkL2Accesses)
                : 0.0;
        table.addRow({benchmarkName(id),
                      ReportTable::num(exp.speedup(id, ovl, base)),
                      ReportTable::num(exp.speedup(id, aug, base)),
                      ReportTable::num(exp.speedup(id, ideal, base)),
                      ReportTable::pct(elim), ReportTable::pct(wl2)});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: +ptw-sched approaches the ideal "
                 "column; 10-20% of walk references eliminated.\n";
    benchutil::maybeObserveRun(opt, aug);
    return 0;
}
