/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every binary accepts:
 *   --scale=<f>   workload scale factor (default 0.25 for speed;
 *                 larger values approach the paper's footprints)
 *   --seed=<n>    workload seed
 *   --bench=<name> run a single benchmark instead of all six
 *   --jobs=<n>    sweep worker threads (default: GPUMMU_JOBS env,
 *                 else all hardware threads; results are identical
 *                 at any job count)
 *   --trace=<file>         after the sweep, re-run one point with
 *                          event tracing armed and write Chrome
 *                          trace-event JSON (open in Perfetto or
 *                          chrome://tracing)
 *   --trace-filter=<pfx>   restrict the trace to categories whose
 *                          name starts with <pfx> (tlb, ptw,
 *                          coalescer, l1, l2, l2tlb, dram, core)
 *   --sample-interval=<n>  telemetry sampling interval in cycles for
 *                          the re-run point (enables telemetry)
 *   --sample-out=<file>    write the interval series to <file>; the
 *                          extension picks the format (.csv or .json)
 *   --report=<file>        write a self-contained HTML run report
 *
 * Telemetry and tracing are both observation-only re-runs of one
 * point after the sweep; arming them never changes any table number.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "telemetry/report.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

namespace gpummu {
namespace benchutil {

struct Options
{
    WorkloadParams params;
    std::vector<BenchmarkId> benchmarks;
    /** Sweep worker threads; 0 resolves via GPUMMU_JOBS. */
    unsigned jobs = 0;
    /** Chrome trace output path; empty disables tracing. */
    std::string traceFile;
    /** Category-name prefix filter for the traced run. */
    std::string traceFilter;
    /** Telemetry sampling interval in cycles; 0 disables telemetry. */
    Cycle sampleInterval = 0;
    /** Interval-series output path (.csv or .json). */
    std::string sampleOut;
    /** HTML run-report output path. */
    std::string reportFile;
};

inline Options
parse(int argc, char **argv, double default_scale = 0.25)
{
    Options opt;
    opt.params.scale = default_scale;
    opt.params.seed = 42;
    opt.benchmarks = allBenchmarks();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        if (const char *v = value("--scale")) {
            opt.params.scale = std::atof(v);
        } else if (const char *v = value("--jobs")) {
            opt.jobs = static_cast<unsigned>(std::atoi(v));
            if (opt.jobs == 0) {
                std::cerr << "--jobs wants a positive int\n";
                std::exit(1);
            }
        } else if (const char *v = value("--seed")) {
            opt.params.seed =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--trace")) {
            opt.traceFile = v;
            if (opt.traceFile.empty()) {
                std::cerr << "--trace wants an output path\n";
                std::exit(1);
            }
        } else if (const char *v = value("--trace-filter")) {
            opt.traceFilter = v;
            if (!traceFilterMatchesAny(opt.traceFilter)) {
                std::cerr << "--trace-filter=" << v
                          << " matches no category; valid: "
                          << traceCatNames() << "\n";
                std::exit(1);
            }
        } else if (const char *v = value("--sample-interval")) {
            const long long n = std::atoll(v);
            if (n <= 0) {
                std::cerr
                    << "--sample-interval wants a positive cycle "
                       "count\n";
                std::exit(1);
            }
            opt.sampleInterval = static_cast<Cycle>(n);
        } else if (const char *v = value("--sample-out")) {
            opt.sampleOut = v;
            const std::string &p = opt.sampleOut;
            auto ends = [&p](const char *suf) {
                const std::string s = suf;
                return p.size() >= s.size() &&
                       p.compare(p.size() - s.size(), s.size(), s) ==
                           0;
            };
            if (p.empty() || (!ends(".csv") && !ends(".json"))) {
                std::cerr << "--sample-out wants a .csv or .json "
                             "path\n";
                std::exit(1);
            }
        } else if (const char *v = value("--report")) {
            opt.reportFile = v;
            if (opt.reportFile.empty()) {
                std::cerr << "--report wants an output path\n";
                std::exit(1);
            }
        } else if (const char *v = value("--bench")) {
            opt.benchmarks.clear();
            for (BenchmarkId id : allBenchmarks()) {
                if (benchmarkName(id) == v)
                    opt.benchmarks.push_back(id);
            }
            if (opt.benchmarks.empty()) {
                std::cerr << "unknown benchmark: " << v << "\n";
                std::exit(1);
            }
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(1);
        }
    }
    if (opt.sampleInterval == 0 &&
        (!opt.sampleOut.empty() || !opt.reportFile.empty())) {
        std::cerr << "--sample-out/--report need "
                     "--sample-interval=<cycles>\n";
        std::exit(1);
    }
    if (opt.sampleInterval != 0 && opt.sampleOut.empty() &&
        opt.reportFile.empty()) {
        std::cerr << "--sample-interval needs --sample-out=<file> "
                     "and/or --report=<file>\n";
        std::exit(1);
    }
    return opt;
}

/**
 * Simulate the (benchmark x config) cross product on @p jobs worker
 * threads, filling @p exp's memo cache so the serial table-printing
 * code below each figure gets every value as a cache hit. Shared
 * baselines are simulated once across the whole grid.
 */
inline void
prewarm(Experiment &exp, const std::vector<BenchmarkId> &benchmarks,
        const std::vector<SystemConfig> &configs, unsigned jobs)
{
    std::vector<SweepPoint> grid;
    grid.reserve(benchmarks.size() * configs.size());
    for (BenchmarkId id : benchmarks) {
        for (const SystemConfig &cfg : configs)
            grid.push_back(SweepPoint{id, cfg});
    }
    SweepRunner(exp, jobs).run(grid);
}

/**
 * Honor --trace=<file>: re-simulate one (benchmark, config) point
 * with a TraceSink armed and export Chrome trace-event JSON. A sink
 * belongs to exactly one run, so this is a separate simulation after
 * the sweep - the table numbers above are untouched (armed and
 * unarmed runs are bit-identical anyway). Uses the first selected
 * benchmark; narrow with --bench=<name> to trace a specific one.
 */
inline void
maybeTraceRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.traceFile.empty())
        return;
    TraceSink sink;
    if (!opt.traceFilter.empty())
        sink.setFilter(opt.traceFilter);
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, &sink);
    if (!sink.writeChromeTraceFile(opt.traceFile)) {
        std::cerr << "failed to write trace: " << opt.traceFile
                  << "\n";
        std::exit(1);
    }
    std::cerr << "trace: " << sink.size() << " events ("
              << sink.dropped() << " dropped) -> " << opt.traceFile
              << " [" << benchmarkName(bench) << " / " << cfg.name
              << "]\n";
}

/**
 * Honor --sample-interval / --sample-out / --report: re-simulate one
 * (benchmark, config) point with telemetry armed and export the
 * interval series (CSV or JSON by extension) and/or the HTML run
 * report. Telemetry belongs to exactly one run, so like tracing this
 * is a separate simulation after the sweep; armed and unarmed runs
 * are bit-identical, so the table numbers above are untouched.
 */
inline void
maybeTelemetryRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.sampleInterval == 0)
        return;
    TelemetryConfig tcfg;
    tcfg.sampleInterval = opt.sampleInterval;
    Telemetry telemetry(tcfg);
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, nullptr, &telemetry);
    if (!opt.sampleOut.empty()) {
        const bool csv =
            opt.sampleOut.size() >= 4 &&
            opt.sampleOut.compare(opt.sampleOut.size() - 4, 4,
                                  ".csv") == 0;
        const bool ok = csv
                            ? telemetry.writeCsvFile(opt.sampleOut)
                            : telemetry.writeJsonFile(opt.sampleOut);
        if (!ok) {
            std::cerr << "failed to write samples: " << opt.sampleOut
                      << "\n";
            std::exit(1);
        }
        std::cerr << "telemetry: "
                  << telemetry.sampler().intervals().size()
                  << " intervals -> " << opt.sampleOut << " ["
                  << benchmarkName(bench) << " / " << cfg.name
                  << "]\n";
    }
    if (!opt.reportFile.empty()) {
        if (!writeHtmlReportFile(opt.reportFile, telemetry)) {
            std::cerr << "report has an empty hot-page table (no "
                         "walks attributed): "
                      << opt.reportFile << "\n";
            std::exit(1);
        }
        std::cerr << "report: " << telemetry.heat().pages().size()
                  << " pages, " << telemetry.heat().lines().size()
                  << " page-table lines -> " << opt.reportFile
                  << "\n";
    }
}

/** Run every requested post-sweep observation of @p cfg (trace,
 *  telemetry); each is its own armed re-simulation. */
inline void
maybeObserveRun(const Options &opt, const SystemConfig &cfg)
{
    maybeTraceRun(opt, cfg);
    maybeTelemetryRun(opt, cfg);
}

/** Geometric mean helper for "average speedup" rows. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace benchutil
} // namespace gpummu

#endif // BENCH_BENCH_UTIL_HH
