/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every binary accepts:
 *   --scale=<f>   workload scale factor (default 0.25 for speed;
 *                 larger values approach the paper's footprints)
 *   --seed=<n>    workload seed
 *   --bench=<name> run a single benchmark instead of all nine
 *   --jobs=<n>    sweep worker threads (default: GPUMMU_JOBS env,
 *                 else all hardware threads; results are identical
 *                 at any job count)
 *   --trace=<file>         after the sweep, re-run one point with
 *                          event tracing armed and write Chrome
 *                          trace-event JSON (open in Perfetto or
 *                          chrome://tracing)
 *   --trace-filter=<pfx>   restrict the trace to categories whose
 *                          name starts with <pfx> (tlb, ptw,
 *                          coalescer, l1, l2, l2tlb, dram, core)
 *   --sample-interval=<n>  telemetry sampling interval in cycles for
 *                          the re-run point (enables telemetry)
 *   --sample-out=<file>    write the interval series to <file>; the
 *                          extension picks the format (.csv or .json)
 *   --report=<file>        write a self-contained HTML run report
 *   --capture-trace=<file> after the sweep, re-run one point with
 *                          memory-trace capture armed and write a
 *                          replayable memtrace (see
 *                          bench/trace_replay)
 *   --spans=<file>         after the sweep, re-run one point with
 *                          translation-lifecycle span tracking armed
 *                          and export the per-stage latency
 *                          decomposition; the extension picks the
 *                          format (.csv or .json). Combined with
 *                          --trace, one run serves both so the
 *                          Chrome trace carries span flow arrows;
 *                          combined with --report, the HTML report
 *                          gains a translation-latency-anatomy
 *                          section.
 *
 * Telemetry, tracing, trace capture and span tracking are
 * observation-only re-runs of one point after the sweep; arming them
 * never changes any table number.
 *
 * All numeric flags parse strictly (sim/parse_util.hh): the whole
 * value must be a number — "--jobs=4abc" is an error, not 4.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "sim/parse_util.hh"
#include "telemetry/report.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/memtrace.hh"
#include "trace/trace.hh"

namespace gpummu {
namespace benchutil {

struct Options
{
    WorkloadParams params;
    std::vector<BenchmarkId> benchmarks;
    /** Sweep worker threads; 0 resolves via GPUMMU_JOBS. */
    unsigned jobs = 0;
    /** Chrome trace output path; empty disables tracing. */
    std::string traceFile;
    /** Category-name prefix filter for the traced run. */
    std::string traceFilter;
    /** Telemetry sampling interval in cycles; 0 disables telemetry. */
    Cycle sampleInterval = 0;
    /** Interval-series output path (.csv or .json). */
    std::string sampleOut;
    /** HTML run-report output path. */
    std::string reportFile;
    /** Memtrace capture output path; empty disables capture. */
    std::string captureTrace;
    /** Span export path (.csv or .json); empty disables spans. */
    std::string spansFile;
};

/**
 * Parse the shared bench CLI into @p opt. Returns false with a
 * one-line message in @p err on any malformed flag — numeric values
 * parse strictly (full token, no locale, overflow rejected), so
 * "--jobs=4abc" and "--seed=-1" are errors rather than garbage.
 * Exposed separately from parse() so tests can pin the rejects
 * without spawning processes.
 */
inline bool
tryParse(int argc, char **argv, Options &opt, std::string &err,
         double default_scale = 0.25)
{
    opt = Options{};
    opt.params.scale = default_scale;
    opt.params.seed = 42;
    opt.benchmarks = allBenchmarks();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        if (const char *v = value("--scale")) {
            if (!parseDouble(v, opt.params.scale) ||
                opt.params.scale <= 0.0) {
                err = "--scale wants a positive number, got '" +
                      std::string(v) + "'";
                return false;
            }
        } else if (const char *v = value("--jobs")) {
            if (!parseNum(v, opt.jobs) || opt.jobs == 0) {
                err = "--jobs wants a positive int, got '" +
                      std::string(v) + "'";
                return false;
            }
        } else if (const char *v = value("--seed")) {
            if (!parseNum(v, opt.params.seed)) {
                err = "--seed wants a non-negative int, got '" +
                      std::string(v) + "'";
                return false;
            }
        } else if (const char *v = value("--trace")) {
            opt.traceFile = v;
            if (opt.traceFile.empty()) {
                err = "--trace wants an output path";
                return false;
            }
        } else if (const char *v = value("--trace-filter")) {
            opt.traceFilter = v;
            if (!traceFilterMatchesAny(opt.traceFilter)) {
                err = "--trace-filter=" + std::string(v) +
                      " matches no category; valid: " +
                      traceCatNames();
                return false;
            }
        } else if (const char *v = value("--sample-interval")) {
            if (!parseNum(v, opt.sampleInterval) ||
                opt.sampleInterval == 0) {
                err = "--sample-interval wants a positive cycle "
                      "count, got '" +
                      std::string(v) + "'";
                return false;
            }
        } else if (const char *v = value("--sample-out")) {
            opt.sampleOut = v;
            const std::string &p = opt.sampleOut;
            auto ends = [&p](const char *suf) {
                const std::string s = suf;
                return p.size() >= s.size() &&
                       p.compare(p.size() - s.size(), s.size(), s) ==
                           0;
            };
            if (p.empty() || (!ends(".csv") && !ends(".json"))) {
                err = "--sample-out wants a .csv or .json path";
                return false;
            }
        } else if (const char *v = value("--report")) {
            opt.reportFile = v;
            if (opt.reportFile.empty()) {
                err = "--report wants an output path";
                return false;
            }
        } else if (const char *v = value("--capture-trace")) {
            opt.captureTrace = v;
            if (opt.captureTrace.empty()) {
                err = "--capture-trace wants an output path";
                return false;
            }
        } else if (const char *v = value("--spans")) {
            opt.spansFile = v;
            const std::string &p = opt.spansFile;
            auto ends = [&p](const char *suf) {
                const std::string s = suf;
                return p.size() >= s.size() &&
                       p.compare(p.size() - s.size(), s.size(), s) ==
                           0;
            };
            if (p.empty() || (!ends(".csv") && !ends(".json"))) {
                err = "--spans wants a .csv or .json path";
                return false;
            }
        } else if (const char *v = value("--bench")) {
            opt.benchmarks.clear();
            for (BenchmarkId id : allBenchmarks()) {
                if (benchmarkName(id) == v)
                    opt.benchmarks.push_back(id);
            }
            if (opt.benchmarks.empty()) {
                err = "unknown benchmark: " + std::string(v);
                return false;
            }
        } else {
            err = "unknown option: " + arg;
            return false;
        }
    }
    if (opt.sampleInterval == 0 &&
        (!opt.sampleOut.empty() || !opt.reportFile.empty())) {
        err = "--sample-out/--report need "
              "--sample-interval=<cycles>";
        return false;
    }
    if (opt.sampleInterval != 0 && opt.sampleOut.empty() &&
        opt.reportFile.empty()) {
        err = "--sample-interval needs --sample-out=<file> and/or "
              "--report=<file>";
        return false;
    }
    return true;
}

inline Options
parse(int argc, char **argv, double default_scale = 0.25)
{
    Options opt;
    std::string err;
    if (!tryParse(argc, argv, opt, err, default_scale)) {
        std::cerr << err << "\n";
        std::exit(1);
    }
    return opt;
}

/**
 * Simulate the (benchmark x config) cross product on @p jobs worker
 * threads, filling @p exp's memo cache so the serial table-printing
 * code below each figure gets every value as a cache hit. Shared
 * baselines are simulated once across the whole grid.
 */
inline void
prewarm(Experiment &exp, const std::vector<BenchmarkId> &benchmarks,
        const std::vector<SystemConfig> &configs, unsigned jobs)
{
    std::vector<SweepPoint> grid;
    grid.reserve(benchmarks.size() * configs.size());
    for (BenchmarkId id : benchmarks) {
        for (const SystemConfig &cfg : configs)
            grid.push_back(SweepPoint{id, cfg});
    }
    SweepRunner(exp, jobs).run(grid);
}

/**
 * Honor --trace=<file>: re-simulate one (benchmark, config) point
 * with a TraceSink armed and export Chrome trace-event JSON. A sink
 * belongs to exactly one run, so this is a separate simulation after
 * the sweep - the table numbers above are untouched (armed and
 * unarmed runs are bit-identical anyway). Uses the first selected
 * benchmark; narrow with --bench=<name> to trace a specific one.
 */
inline void
maybeTraceRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.traceFile.empty())
        return;
    TraceSink sink;
    if (!opt.traceFilter.empty())
        sink.setFilter(opt.traceFilter);
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, &sink);
    if (!sink.writeChromeTraceFile(opt.traceFile)) {
        std::cerr << "failed to write trace: " << opt.traceFile
                  << "\n";
        std::exit(1);
    }
    std::cerr << "trace: " << sink.size() << " events ("
              << sink.dropped() << " dropped) -> " << opt.traceFile
              << " [" << benchmarkName(bench) << " / " << cfg.name
              << "]\n";
}

/**
 * Honor --sample-interval / --sample-out / --report: re-simulate one
 * (benchmark, config) point with telemetry armed and export the
 * interval series (CSV or JSON by extension) and/or the HTML run
 * report. Telemetry belongs to exactly one run, so like tracing this
 * is a separate simulation after the sweep; armed and unarmed runs
 * are bit-identical, so the table numbers above are untouched.
 */
inline void
maybeTelemetryRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.sampleInterval == 0)
        return;
    TelemetryConfig tcfg;
    tcfg.sampleInterval = opt.sampleInterval;
    Telemetry telemetry(tcfg);
    // When spans are requested alongside a report, arm them on the
    // telemetry run too so the HTML report gains the translation-
    // latency-anatomy section (spans register no stats, so the run
    // is bit-identical either way).
    SpanTracker spans;
    SpanTracker *span_arm =
        (!opt.spansFile.empty() && !opt.reportFile.empty()) ? &spans
                                                            : nullptr;
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, nullptr, &telemetry,
                  nullptr, span_arm);
    if (!opt.sampleOut.empty()) {
        const bool csv =
            opt.sampleOut.size() >= 4 &&
            opt.sampleOut.compare(opt.sampleOut.size() - 4, 4,
                                  ".csv") == 0;
        const bool ok = csv
                            ? telemetry.writeCsvFile(opt.sampleOut)
                            : telemetry.writeJsonFile(opt.sampleOut);
        if (!ok) {
            std::cerr << "failed to write samples: " << opt.sampleOut
                      << "\n";
            std::exit(1);
        }
        std::cerr << "telemetry: "
                  << telemetry.sampler().intervals().size()
                  << " intervals -> " << opt.sampleOut << " ["
                  << benchmarkName(bench) << " / " << cfg.name
                  << "]\n";
    }
    if (!opt.reportFile.empty()) {
        if (!writeHtmlReportFile(opt.reportFile, telemetry,
                                 span_arm)) {
            std::cerr << "report has an empty hot-page table (no "
                         "walks attributed): "
                      << opt.reportFile << "\n";
            std::exit(1);
        }
        std::cerr << "report: " << telemetry.heat().pages().size()
                  << " pages, " << telemetry.heat().lines().size()
                  << " page-table lines -> " << opt.reportFile
                  << "\n";
    }
}

/**
 * Honor --capture-trace=<file>: re-simulate one (benchmark, config)
 * point with memory-trace capture armed and write a replayable
 * memtrace. Like tracing/telemetry this is a separate observation-
 * only simulation after the sweep (capture registers no stats, so
 * the armed run is bit-identical to an unarmed one). Uses the first
 * selected benchmark; narrow with --bench=<name>. Replay the file
 * with bench/trace_replay.
 */
inline void
maybeCaptureRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.captureTrace.empty())
        return;
    MemTraceWriter writer(opt.captureTrace);
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, nullptr, nullptr, &writer);
    std::cerr << "memtrace: " << writer.accessesRecorded()
              << " accesses, " << writer.branchesRecorded()
              << " branches -> " << opt.captureTrace << " ["
              << benchmarkName(bench) << " / " << cfg.name << "]\n";
}

/**
 * Honor --spans=<file>: re-simulate one (benchmark, config) point
 * with translation-lifecycle span tracking armed and export the
 * per-stage latency decomposition (CSV or JSON by extension), plus a
 * summary to stderr. When --trace was also given, this single run
 * serves both exports so the Chrome trace carries the span flow
 * arrows (with --trace alone the output is byte-identical to a
 * span-less traced run, since spans emit nothing without a sink).
 * An empty span table is fatal: the run observed no translation
 * requests, so the hooks are not armed or the workload never issued
 * a memory access.
 */
inline void
maybeSpanRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.spansFile.empty())
        return;
    SpanTracker spans;
    TraceSink sink;
    TraceSink *trace = nullptr;
    if (!opt.traceFile.empty()) {
        if (!opt.traceFilter.empty())
            sink.setFilter(opt.traceFilter);
        trace = &sink;
    }
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, trace, nullptr, nullptr,
                  &spans);
    if (trace != nullptr) {
        if (!sink.writeChromeTraceFile(opt.traceFile)) {
            std::cerr << "failed to write trace: " << opt.traceFile
                      << "\n";
            std::exit(1);
        }
        std::cerr << "trace: " << sink.size() << " events ("
                  << sink.dropped() << " dropped) -> "
                  << opt.traceFile << " [" << benchmarkName(bench)
                  << " / " << cfg.name << "]\n";
    }
    if (spans.empty()) {
        std::cerr << "span table is empty: no translation requests "
                     "were observed ["
                  << benchmarkName(bench) << " / " << cfg.name
                  << "]\n";
        std::exit(1);
    }
    const bool csv =
        opt.spansFile.size() >= 4 &&
        opt.spansFile.compare(opt.spansFile.size() - 4, 4, ".csv") ==
            0;
    const bool ok = csv ? spans.writeCsvFile(opt.spansFile)
                        : spans.writeJsonFile(opt.spansFile);
    if (!ok) {
        std::cerr << "failed to write spans: " << opt.spansFile
                  << "\n";
        std::exit(1);
    }
    spans.writeSummary(std::cerr);
    std::cerr << "spans: " << spans.spansClosed() << " closed ("
              << spans.spansOpen() << " open at end) -> "
              << opt.spansFile << " [" << benchmarkName(bench)
              << " / " << cfg.name << "]\n";
}

/** Run every requested post-sweep observation of @p cfg (trace,
 *  telemetry, memtrace capture, spans); each is its own armed
 *  re-simulation, except that --spans + --trace share one run so
 *  the trace carries span flow arrows. */
inline void
maybeObserveRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.spansFile.empty())
        maybeTraceRun(opt, cfg);
    maybeSpanRun(opt, cfg);
    maybeTelemetryRun(opt, cfg);
    maybeCaptureRun(opt, cfg);
}

/** Geometric mean helper for "average speedup" rows. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace benchutil
} // namespace gpummu

#endif // BENCH_BENCH_UTIL_HH
