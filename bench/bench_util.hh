/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every binary accepts:
 *   --scale=<f>   workload scale factor (default 0.25 for speed;
 *                 larger values approach the paper's footprints)
 *   --seed=<n>    workload seed
 *   --bench=<name> run a single benchmark instead of all six
 *   --jobs=<n>    sweep worker threads (default: GPUMMU_JOBS env,
 *                 else all hardware threads; results are identical
 *                 at any job count)
 *   --trace=<file>         after the sweep, re-run one point with
 *                          event tracing armed and write Chrome
 *                          trace-event JSON (open in Perfetto or
 *                          chrome://tracing)
 *   --trace-filter=<pfx>   restrict the trace to categories whose
 *                          name starts with <pfx> (tlb, ptw,
 *                          coalescer, l1, l2, l2tlb, dram, core)
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "trace/trace.hh"

namespace gpummu {
namespace benchutil {

struct Options
{
    WorkloadParams params;
    std::vector<BenchmarkId> benchmarks;
    /** Sweep worker threads; 0 resolves via GPUMMU_JOBS. */
    unsigned jobs = 0;
    /** Chrome trace output path; empty disables tracing. */
    std::string traceFile;
    /** Category-name prefix filter for the traced run. */
    std::string traceFilter;
};

inline Options
parse(int argc, char **argv, double default_scale = 0.25)
{
    Options opt;
    opt.params.scale = default_scale;
    opt.params.seed = 42;
    opt.benchmarks = allBenchmarks();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        if (const char *v = value("--scale")) {
            opt.params.scale = std::atof(v);
        } else if (const char *v = value("--jobs")) {
            opt.jobs = static_cast<unsigned>(std::atoi(v));
            if (opt.jobs == 0) {
                std::cerr << "--jobs wants a positive int\n";
                std::exit(1);
            }
        } else if (const char *v = value("--seed")) {
            opt.params.seed =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--trace")) {
            opt.traceFile = v;
            if (opt.traceFile.empty()) {
                std::cerr << "--trace wants an output path\n";
                std::exit(1);
            }
        } else if (const char *v = value("--trace-filter")) {
            opt.traceFilter = v;
        } else if (const char *v = value("--bench")) {
            opt.benchmarks.clear();
            for (BenchmarkId id : allBenchmarks()) {
                if (benchmarkName(id) == v)
                    opt.benchmarks.push_back(id);
            }
            if (opt.benchmarks.empty()) {
                std::cerr << "unknown benchmark: " << v << "\n";
                std::exit(1);
            }
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(1);
        }
    }
    return opt;
}

/**
 * Simulate the (benchmark x config) cross product on @p jobs worker
 * threads, filling @p exp's memo cache so the serial table-printing
 * code below each figure gets every value as a cache hit. Shared
 * baselines are simulated once across the whole grid.
 */
inline void
prewarm(Experiment &exp, const std::vector<BenchmarkId> &benchmarks,
        const std::vector<SystemConfig> &configs, unsigned jobs)
{
    std::vector<SweepPoint> grid;
    grid.reserve(benchmarks.size() * configs.size());
    for (BenchmarkId id : benchmarks) {
        for (const SystemConfig &cfg : configs)
            grid.push_back(SweepPoint{id, cfg});
    }
    SweepRunner(exp, jobs).run(grid);
}

/**
 * Honor --trace=<file>: re-simulate one (benchmark, config) point
 * with a TraceSink armed and export Chrome trace-event JSON. A sink
 * belongs to exactly one run, so this is a separate simulation after
 * the sweep - the table numbers above are untouched (armed and
 * unarmed runs are bit-identical anyway). Uses the first selected
 * benchmark; narrow with --bench=<name> to trace a specific one.
 */
inline void
maybeTraceRun(const Options &opt, const SystemConfig &cfg)
{
    if (opt.traceFile.empty())
        return;
    TraceSink sink;
    if (!opt.traceFilter.empty())
        sink.setFilter(opt.traceFilter);
    const BenchmarkId bench = opt.benchmarks.front();
    runConfigFull(bench, cfg, opt.params, &sink);
    if (!sink.writeChromeTraceFile(opt.traceFile)) {
        std::cerr << "failed to write trace: " << opt.traceFile
                  << "\n";
        std::exit(1);
    }
    std::cerr << "trace: " << sink.size() << " events ("
              << sink.dropped() << " dropped) -> " << opt.traceFile
              << " [" << benchmarkName(bench) << " / " << cfg.name
              << "]\n";
}

/** Geometric mean helper for "average speedup" rows. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace benchutil
} // namespace gpummu

#endif // BENCH_BENCH_UTIL_HH
