/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every binary accepts:
 *   --scale=<f>   workload scale factor (default 0.25 for speed;
 *                 larger values approach the paper's footprints)
 *   --seed=<n>    workload seed
 *   --bench=<name> run a single benchmark instead of all six
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"

namespace gpummu {
namespace benchutil {

struct Options
{
    WorkloadParams params;
    std::vector<BenchmarkId> benchmarks;
};

inline Options
parse(int argc, char **argv, double default_scale = 0.25)
{
    Options opt;
    opt.params.scale = default_scale;
    opt.params.seed = 42;
    opt.benchmarks = allBenchmarks();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg](const char *key) -> const char * {
            const std::string k = std::string(key) + "=";
            return arg.rfind(k, 0) == 0 ? arg.c_str() + k.size()
                                        : nullptr;
        };
        if (const char *v = value("--scale")) {
            opt.params.scale = std::atof(v);
        } else if (const char *v = value("--seed")) {
            opt.params.seed =
                static_cast<std::uint64_t>(std::atoll(v));
        } else if (const char *v = value("--bench")) {
            opt.benchmarks.clear();
            for (BenchmarkId id : allBenchmarks()) {
                if (benchmarkName(id) == v)
                    opt.benchmarks.push_back(id);
            }
            if (opt.benchmarks.empty()) {
                std::cerr << "unknown benchmark: " << v << "\n";
                std::exit(1);
            }
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            std::exit(1);
        }
    }
    return opt;
}

/** Geometric mean helper for "average speedup" rows. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace benchutil
} // namespace gpummu

#endif // BENCH_BENCH_UTIL_HH
