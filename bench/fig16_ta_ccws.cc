/**
 * @file
 * Figure 16 reproduction: TLB-aware CCWS (TA-CCWS) weight sweep.
 * Lost-locality score updates weight cache misses that also TLB
 * missed x times more heavily. Paper shape: heavier TLB weighting
 * performs better, 4:1 approaching CCWS-without-TLBs for most
 * benchmarks (bfs and kmeans remain hard).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig ccws_nt = presets::ccws(presets::noTlb());
    const SystemConfig ccws_aug =
        presets::ccws(presets::augmentedTlb());

    std::cout << "=== Figure 16: TA-CCWS TLB-miss weights ===\n"
              << "scale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "ccws(no-tlb)", "ccws+aug(1:1)",
                       "ta-ccws(2:1)", "ta-ccws(4:1)",
                       "ta-ccws(8:1)"});
    for (BenchmarkId id : opt.benchmarks) {
        std::vector<std::string> row{
            benchmarkName(id),
            ReportTable::num(exp.speedup(id, ccws_nt, base)),
            ReportTable::num(exp.speedup(id, ccws_aug, base))};
        for (unsigned w : {2u, 4u, 8u}) {
            const auto cfg =
                presets::taCcws(presets::augmentedTlb(), w);
            row.push_back(
                ReportTable::num(exp.speedup(id, cfg, base)));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\npaper shape: weighting TLB-missing references "
                 "more heavily closes the gap to ccws(no-tlb).\n";
    benchutil::maybeObserveRun(opt, ccws_aug);
    return 0;
}
