/**
 * @file
 * Figure 17 reproduction: TLB-conscious warp scheduling (TCWS) with
 * the TLB victim-tag-array entries-per-warp swept. Paper shape:
 * 8 entries per warp does best, with *half* the VTA hardware of
 * cache-line-based CCWS (page tags cover 4KB, line tags 128B).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    auto opt = benchutil::parse(argc, argv, /*default_scale=*/0.15);
    Experiment exp(opt.params);

    const SystemConfig base = presets::noTlb();
    const SystemConfig ccws_nt = presets::ccws(presets::noTlb());
    const SystemConfig ta4 =
        presets::taCcws(presets::augmentedTlb(), 4);

    std::cout << "=== Figure 17: TCWS entries-per-warp sweep ===\n"
              << "scale=" << opt.params.scale << "\n\n";

    ReportTable table({"benchmark", "ccws(no-tlb)", "ta-ccws(4:1)",
                       "tcws-2epw", "tcws-4epw", "tcws-8epw",
                       "tcws-16epw"});
    for (BenchmarkId id : opt.benchmarks) {
        std::vector<std::string> row{
            benchmarkName(id),
            ReportTable::num(exp.speedup(id, ccws_nt, base)),
            ReportTable::num(exp.speedup(id, ta4, base))};
        for (unsigned epw : {2u, 4u, 8u, 16u}) {
            const auto cfg = presets::tcws(presets::augmentedTlb(),
                                           epw, {0, 0, 0, 0});
            row.push_back(
                ReportTable::num(exp.speedup(id, cfg, base)));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\npaper shape: ~8 entries per warp does best and "
                 "competes with TA-CCWS using half the hardware.\n";
    benchutil::maybeObserveRun(opt, ta4);
    return 0;
}
